#!/usr/bin/env python
"""A Pilaf-style key-value store over one-sided remote reads.

The paper names key-value stores as killer applications: "read
operations dominate key-value store traffic, and simply return the
object in memory" (§2.1), and cites Pilaf's one-sided-read GETs (§8).
This example hosts a hash table in a server node's context segment and
serves GETs from two client nodes with zero server CPU involvement —
every probe is a stateless RRPP transaction at the server's RMC.

Run:  python examples/kvstore_pilaf.py
"""

import random

from repro import Cluster, ClusterConfig, RMCSession
from repro.apps import KVClient, KVServer

CTX_ID = 1
NUM_BUCKETS = 8192
NUM_KEYS = 2000
GETS_PER_CLIENT = 150


def main():
    cluster = Cluster(config=ClusterConfig(num_nodes=3))
    ctx = cluster.create_global_context(CTX_ID, 4 << 20)

    # Node 0 is the server; nodes 1 and 2 are clients.
    server_session = RMCSession(cluster.nodes[0].core, ctx.qp(0),
                                ctx.entry(0))
    server = KVServer(server_session, num_buckets=NUM_BUCKETS)

    rng = random.Random(42)
    dataset = {key: f"value-{key}".encode() for key in
               rng.sample(range(1, 10 ** 6), NUM_KEYS)}
    for key, value in dataset.items():
        server.put_local(key, value)
    load = server.entries / NUM_BUCKETS
    print(f"server: {server.entries} keys in {NUM_BUCKETS} buckets "
          f"(load factor {load:.2f})")

    clients = []
    for nid in (1, 2):
        session = RMCSession(cluster.nodes[nid].core, ctx.qp(nid),
                             ctx.entry(nid))
        clients.append(KVClient(session, server_nid=0,
                                num_buckets=NUM_BUCKETS))

    keys = list(dataset)

    def client_app(sim, client, seed):
        local_rng = random.Random(seed)
        hits = 0
        for _ in range(GETS_PER_CLIENT):
            if local_rng.random() < 0.9:           # 90% present keys
                key = local_rng.choice(keys)
                value = yield from client.get(key)
                assert value == dataset[key], "corrupted GET!"
                hits += 1
            else:                                   # 10% absent keys
                missing = local_rng.randrange(10 ** 6, 2 * 10 ** 6)
                value = yield from client.get(missing)
                assert value is None
        return hits

    procs = [cluster.sim.process(client_app(cluster.sim, c, i))
             for i, c in enumerate(clients)]
    cluster.run()

    print(f"\n{'client':>7} {'GETs':>6} {'hits':>6} {'probes/GET':>11} "
          f"{'mean (ns)':>10} {'p99 (ns)':>9}")
    for i, client in enumerate(clients):
        stats = client.stats
        print(f"{i + 1:>7} {stats.gets:>6} {stats.hits:>6} "
              f"{stats.probes_per_get:>11.2f} "
              f"{stats.get_latency.mean:>10.0f} "
              f"{stats.get_latency.p99:>9.0f}")
    assert all(p.ok for p in procs)
    print(f"\nevery GET verified against the reference dataset; "
          f"server CPU never touched a request")
    print(f"server RMC served "
          f"{cluster.nodes[0].rmc.counters['requests_served']} "
          f"stateless remote reads")


if __name__ == "__main__":
    main()
