#!/usr/bin/env python
"""The paper's application study: PageRank three ways (§7.5).

Generates a Twitter-like power-law graph, runs one BSP superstep with
each implementation — SHM(pthreads), soNUMA(bulk), soNUMA(fine-grain) —
verifies all three against the analytic reference, and prints the
speedup table of Fig. 9 (left) at a reduced scale.

Run:  python examples/pagerank_twitter.py [--vertices N] [--nodes N...]
"""

import argparse

from repro.apps import (
    pagerank_reference,
    partition_random,
    run_shm,
    run_sonuma_bulk,
    run_sonuma_fine,
    zipf_graph,
)
from repro.cluster import ClusterConfig
from repro.workloads import scaled_node_config


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=2048)
    parser.add_argument("--degree", type=float, default=8.0)
    parser.add_argument("--nodes", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--supersteps", type=int, default=1)
    args = parser.parse_args()

    print(f"generating Zipf graph: {args.vertices} vertices, "
          f"avg degree {args.degree}")
    graph = zipf_graph(args.vertices, avg_degree=args.degree, seed=7)
    graph.validate()
    print(f"  {graph.num_edges} edges; "
          f"max out-degree {max(graph.out_degree)}")

    reference = pagerank_reference(graph, args.supersteps)

    def check(result):
        error = max(abs(a - b) for a, b in zip(reference, result.ranks))
        assert error < 1e-9, f"{result.variant} diverged: {error}"
        return result

    llc_total = 64 * 1024  # scaled: the graph exceeds aggregate LLC
    baseline = check(run_shm(graph, 1, supersteps=args.supersteps,
                             llc_per_core_bytes=llc_total))
    print(f"\nbaseline SHM x1: {baseline.elapsed_us:.0f} us "
          f"(ranks verified against reference)")

    print(f"\n{'nodes':>6} {'SHM':>8} {'soNUMA(bulk)':>14} "
          f"{'soNUMA(fine)':>14}   (speedup over 1 thread)")
    for n in args.nodes:
        shm = check(run_shm(graph, n, supersteps=args.supersteps,
                            llc_per_core_bytes=llc_total // n))
        config = ClusterConfig(
            num_nodes=n,
            node=scaled_node_config(llc_bytes=llc_total // n))
        bulk = check(run_sonuma_bulk(graph, n, supersteps=args.supersteps,
                                     cluster_config=config))
        fine = check(run_sonuma_fine(graph, n, supersteps=args.supersteps,
                                     cluster_config=config))
        print(f"{n:>6} {baseline.elapsed_ns / shm.elapsed_ns:>8.2f} "
              f"{baseline.elapsed_ns / bulk.elapsed_ns:>14.2f} "
              f"{baseline.elapsed_ns / fine.elapsed_ns:>14.2f}")

        part = partition_random(graph, n)
        print(f"       cut edges: {part.cut_edges(graph)} "
              f"({100 * part.cut_edges(graph) / graph.num_edges:.0f}% of "
              f"edges -> fine-grain remote reads: {fine.remote_reads})")

    print("\npaper's Fig. 9 trend: SHM ~= bulk > fine-grain, all scaling")


if __name__ == "__main__":
    main()
