#!/usr/bin/env python
"""Iterative analytics on the mini-Pregel engine, with notifications.

Combines two higher-level pieces built on the soNUMA primitives:

* the BSP engine (Pregel-style vertex programs over bulk shuffles) runs
  PageRank *to convergence* and connected-component label propagation;
* the §8 notification extension signals an idle observer node when the
  computation finishes — no polling at the observer.

Run:  python examples/bsp_analytics.py
"""

from repro.apps import (
    BSPEngine,
    MinLabelProgram,
    PageRankProgram,
    pagerank_reference,
    zipf_graph,
)
from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession


def converged_pagerank():
    graph = zipf_graph(512, avg_degree=6, seed=23)
    engine = BSPEngine(graph, num_nodes=4)
    result = engine.run(PageRankProgram(), max_supersteps=100,
                        stop_on_convergence=True, tolerance=1e-9)
    reference = pagerank_reference(graph, result.supersteps_run)
    error = max(abs(a - b) for a, b in zip(reference, result.values))
    print(f"PageRank on 4 nodes: converged in {result.supersteps_run} "
          f"supersteps ({result.elapsed_ns / 1e6:.2f} ms simulated)")
    print(f"  {result.remote_reads} bulk shuffle reads; "
          f"max deviation from reference: {error:.2e}")
    top = sorted(range(graph.num_vertices),
                 key=lambda v: -result.values[v])[:5]
    print(f"  top-5 vertices by rank: {top}")


def label_propagation():
    graph = zipf_graph(512, avg_degree=6, seed=23)
    engine = BSPEngine(graph, num_nodes=4)
    result = engine.run(MinLabelProgram(), max_supersteps=100,
                        stop_on_convergence=True)
    labels = {int(v) for v in result.values}
    print(f"\nmin-label propagation: fixpoint in "
          f"{result.supersteps_run} supersteps; "
          f"{len(labels)} distinct labels remain")


def notify_when_done():
    """A worker notifies an idle observer when its job completes."""
    cluster = Cluster(config=ClusterConfig(num_nodes=2))
    gctx = cluster.create_global_context(1, 1 << 20)
    worker = RMCSession(cluster.nodes[0].core, gctx.qp(0), gctx.entry(0))
    queue = cluster.nodes[1].driver.enable_notifications()
    woke = {}

    def observer(sim):
        notification = yield from queue.wait()   # blocks, zero polling
        woke["at"] = sim.now
        woke["payload"] = notification.payload

    def job(sim):
        lbuf = worker.alloc_buffer(4096)
        yield sim.timeout(25_000)                # ... the job runs ...
        worker.buffer_poke(lbuf, b"job done")
        yield from worker.notify_sync(1, lbuf, 8)

    cluster.sim.process(observer(cluster.sim))
    cluster.sim.process(job(cluster.sim))
    cluster.run()
    print(f"\nnotification: observer slept 25 us with zero polling, "
          f"woke at t={woke['at'] / 1000:.1f} us "
          f"with payload {woke['payload']!r}")


def main():
    converged_pagerank()
    label_propagation()
    notify_when_done()


if __name__ == "__main__":
    main()
