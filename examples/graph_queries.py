#!/usr/bin/env python
"""On-line graph queries: distributed BFS two ways.

"Many applications such as on-line graph processing algorithms ...
demand low latency and can take advantage of one-sided read operations"
(paper §8). This example runs breadth-first search over a partitioned
power-law graph with both communication styles the library supports:

* fine-grain one-sided: the discovering node *reads* remote adjacency
  lists directly out of their owners' context segments (two rmc_reads
  per remote vertex: CSR index, then edges) — zero owner CPU;
* push/message-passing: frontier batches exchanged with the §5.3
  messaging library each level (the classic BSP approach).

Both produce identical distances (verified against the reference).

Run:  python examples/graph_queries.py
"""

from repro.apps import bfs_reference, run_bfs_fine, run_bfs_push, zipf_graph
from repro.apps.graph import partition_random


def main():
    graph = zipf_graph(600, avg_degree=6, seed=31)
    graph.validate()
    source = 0
    reference = bfs_reference(graph, source)
    reachable = sum(1 for d in reference if d >= 0)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"{reachable} reachable from {source}, "
          f"eccentricity {max(d for d in reference if d >= 0)}")

    for nodes in (2, 4):
        part = partition_random(graph, nodes)
        cut = part.cut_edges(graph)
        print(f"\n--- {nodes} nodes "
              f"({cut} cut edges, {100 * cut / graph.num_edges:.0f}%) ---")

        fine = run_bfs_fine(graph, num_nodes=nodes, source=source)
        assert fine.distances == reference, "fine-grain BFS diverged!"
        print(f"one-sided: {fine.elapsed_ns / 1000:8.1f} us, "
              f"{fine.remote_reads} remote reads "
              f"(owners' cores never touched)")

        push = run_bfs_push(graph, num_nodes=nodes, source=source)
        assert push.distances == reference, "push BFS diverged!"
        print(f"push:      {push.elapsed_ns / 1000:8.1f} us, "
              f"{push.messages} messages "
              f"({push.levels + 1} frontier exchanges)")

    print("\nboth variants verified against the untimed reference")


if __name__ == "__main__":
    main()
