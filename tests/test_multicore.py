"""Multi-core nodes and multi-QP contexts (paper §4.2).

"Multi-threaded processes can register multiple QPs for the same
address space and ctx_id." Each core drives its own QP; the single RGP
polls all of them round-robin.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.node import NodeConfig
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 64 * PAGE_SIZE


def build_multicore(num_cores=4):
    config = ClusterConfig(num_nodes=2,
                           node=NodeConfig(num_cores=num_cores))
    cluster = Cluster(config=config)
    gctx = cluster.create_global_context(CTX, SEG,
                                         qps_per_node=num_cores)
    return cluster, gctx


class TestMultiQP:
    def test_each_core_drives_its_own_qp(self):
        cluster, gctx = build_multicore(4)
        node0 = cluster.nodes[0]
        for i in range(16):
            cluster.poke_segment(1, CTX, i * 64, bytes([i]) * 64)
        results = {}

        def worker(sim, core_index):
            session = RMCSession(node0.cores[core_index],
                                 gctx.qp(0, core_index), gctx.entry(0))
            lbuf = session.alloc_buffer(4096)
            got = []
            for i in range(4):
                offset = (core_index * 4 + i) * 64
                yield from session.read_sync(1, offset, lbuf, 64)
                got.append(session.buffer_peek(lbuf, 1)[0])
            results[core_index] = got

        for core_index in range(4):
            cluster.sim.process(worker(cluster.sim, core_index))
        cluster.run()
        for core_index in range(4):
            expected = [core_index * 4 + i for i in range(4)]
            assert results[core_index] == expected

    def test_concurrent_qps_share_one_rgp(self):
        cluster, gctx = build_multicore(2)
        node0 = cluster.nodes[0]
        done = []

        def worker(sim, core_index):
            session = RMCSession(node0.cores[core_index],
                                 gctx.qp(0, core_index), gctx.entry(0))
            lbuf = session.alloc_buffer(4096)
            for i in range(10):
                yield from session.read_sync(1, i * 64, lbuf, 64)
            done.append(core_index)

        for core_index in range(2):
            cluster.sim.process(worker(cluster.sim, core_index))
        cluster.run()
        assert sorted(done) == [0, 1]
        # The WQ requests from both QPs flowed through one RMC.
        assert cluster.nodes[0].rmc.counters["wq_requests"] == 20

    def test_aggregate_iops_scales_with_cores(self):
        """More cores/QPs -> proportionally more operations per second
        (the regime behind Table 2's '35M @ 4 cores' RDMA row)."""

        def measure(num_cores):
            cluster, gctx = build_multicore(num_cores)
            node0 = cluster.nodes[0]
            total_ops = 120

            def worker(sim, core_index):
                session = RMCSession(node0.cores[core_index],
                                     gctx.qp(0, core_index), gctx.entry(0))
                lbuf = session.alloc_buffer(64 * 64)
                ops = total_ops // num_cores
                for i in range(ops):
                    yield from session.wait_for_slot()
                    yield from session.read_async(
                        1, (i % 32) * 64, lbuf + (i % 64) * 64, 64,
                        callback=lambda cq: None)
                yield from session.drain_cq()

            for core_index in range(num_cores):
                cluster.sim.process(worker(cluster.sim, core_index))
            cluster.run()
            return total_ops / cluster.sim.now * 1e3  # Mops/s

        one = measure(1)
        four = measure(4)
        assert four > 2.5 * one  # near-linear QP scaling

    def test_qp_ids_distinct_across_node(self):
        cluster, gctx = build_multicore(3)
        ids = [qp.qp_id for qp in gctx.qps[0]]
        assert len(set(ids)) == 3
