"""Tests for the mini-Pregel BSP engine."""

import pytest

from repro.apps.bsp import (
    BSPEngine,
    MinLabelProgram,
    PageRankProgram,
    RECORD_BYTES,
)
from repro.apps.graph import pagerank_reference, zipf_graph


@pytest.fixture(scope="module")
def graph():
    return zipf_graph(150, avg_degree=5, seed=17)


class TestPageRankProgram:
    def test_matches_reference_fixed_steps(self, graph):
        engine = BSPEngine(graph, num_nodes=3)
        result = engine.run(PageRankProgram(), max_supersteps=3,
                            stop_on_convergence=False)
        reference = pagerank_reference(graph, 3)
        assert result.supersteps_run == 3
        assert max(abs(a - b)
                   for a, b in zip(reference, result.values)) < 1e-12

    def test_convergence_stops_early(self, graph):
        engine = BSPEngine(graph, num_nodes=2)
        result = engine.run(PageRankProgram(), max_supersteps=200,
                            stop_on_convergence=True, tolerance=1e-10)
        assert result.converged
        assert result.supersteps_run < 200
        # Converged ranks approximate the long-run reference.
        reference = pagerank_reference(graph, result.supersteps_run)
        assert max(abs(a - b)
                   for a, b in zip(reference, result.values)) < 1e-6

    def test_shuffle_is_one_read_per_peer_per_superstep(self, graph):
        engine = BSPEngine(graph, num_nodes=3)
        result = engine.run(PageRankProgram(), max_supersteps=2,
                            stop_on_convergence=False)
        assert result.remote_reads == 2 * 3 * 2  # steps x nodes x peers


class TestMinLabelProgram:
    def test_labels_reach_fixpoint(self, graph):
        engine = BSPEngine(graph, num_nodes=2)
        result = engine.run(MinLabelProgram(), max_supersteps=100,
                            stop_on_convergence=True)
        assert result.converged
        labels = result.values
        # Fixpoint property: every vertex's label is <= the labels
        # flowing into it from its in-neighbors (one more step changes
        # nothing).
        for v in range(graph.num_vertices):
            incoming = [labels[u] for u in graph.in_neighbors[v]]
            best = min([float(v)] + incoming)
            assert labels[v] == best

    def test_single_node_matches_multi_node(self, graph):
        single = BSPEngine(graph, num_nodes=1).run(
            MinLabelProgram(), max_supersteps=60)
        multi = BSPEngine(graph, num_nodes=3).run(
            MinLabelProgram(), max_supersteps=60)
        assert single.values == multi.values


class TestEngineMechanics:
    def test_record_is_one_cache_line(self):
        assert RECORD_BYTES == 64

    def test_zero_supersteps(self, graph):
        engine = BSPEngine(graph, num_nodes=2)
        result = engine.run(PageRankProgram(), max_supersteps=0,
                            stop_on_convergence=False)
        assert result.supersteps_run == 0
        # Values are the program's initial values.
        assert all(v == pytest.approx(1.0 / graph.num_vertices)
                   for v in result.values)
