"""Failure injection and recovery across the full stack (§5.1).

"the RMC notifies the driver of failures within the soNUMA fabric,
including the loss of links and nodes. Such transitions typically
require a reset of the RMC's state, and may require a restart of the
applications."
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 16 * PAGE_SIZE


def build(num_nodes=3):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    gctx = cluster.create_global_context(CTX, SEG)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(num_nodes)}
    return cluster, gctx, sessions


class TestLinkFailure:
    def test_severed_link_only_affects_that_pair(self):
        cluster, _g, sessions = build()
        cluster.poke_segment(1, CTX, 0, b"B" * 64)
        cluster.poke_segment(2, CTX, 0, b"C" * 64)
        cluster.fabric.sever_link(0, 1)
        outcome = {}

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            # Node 2 is still reachable.
            yield from session.read_sync(2, 0, lbuf, 64)
            outcome["node2"] = session.buffer_peek(lbuf, 1)
            # Node 1 is not: the request is dropped, driver notified.
            yield from session.read_async(1, 0, lbuf, 64)
            yield sim.timeout(2000)
            outcome["failures"] = len(cluster.nodes[0].driver.failures)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=100000)
        assert outcome["node2"] == b"C"
        assert outcome["failures"] == 1

    def test_restore_link_resumes_traffic(self):
        cluster, _g, sessions = build(num_nodes=2)
        cluster.poke_segment(1, CTX, 0, b"ok" + bytes(62))
        cluster.fabric.sever_link(0, 1)

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            # First attempt is lost; give up on it via reset.
            yield from session.read_async(1, 0, lbuf, 64)
            yield sim.timeout(1000)
            aborted = cluster.nodes[0].driver.reset_rmc()
            # Driver-level recovery: heal the link, retry on a fresh QP.
            cluster.fabric.restore_link(0, 1)
            fresh_qp = cluster.nodes[0].driver.create_qp(CTX)
            retry = RMCSession(cluster.nodes[0].core, fresh_qp,
                               cluster.nodes[0].driver.contexts[CTX])
            rbuf = retry.alloc_buffer(4096)
            yield from retry.read_sync(1, 0, rbuf, 64)
            return aborted, retry.buffer_peek(rbuf, 2)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run(until=10_000_000)
        aborted, data = proc.value
        assert aborted == 1
        assert data == b"ok"


class TestNodeFailure:
    def test_surviving_nodes_keep_working(self):
        cluster, _g, sessions = build(num_nodes=4)
        for n in (1, 2, 3):
            cluster.poke_segment(n, CTX, 0, bytes([n]) * 64)
        cluster.fabric.fail_node(3)
        reads = {}

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            for n in (1, 2):
                yield from session.read_sync(n, 0, lbuf, 64)
                reads[n] = session.buffer_peek(lbuf, 1)[0]

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=1_000_000)
        assert reads == {1: 1, 2: 2}

    def test_reset_clears_rmc_state(self):
        cluster, _g, sessions = build(num_nodes=2)
        cluster.fabric.fail_node(1)

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            for _ in range(3):
                yield from session.read_async(1, 0, lbuf, 64)
            yield sim.timeout(2000)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=100000)
        rmc = cluster.nodes[0].rmc
        assert rmc.itt.in_flight == 3
        aborted = cluster.nodes[0].driver.reset_rmc()
        assert aborted == 3
        assert rmc.itt.in_flight == 0
        assert rmc.mmu.tlb.occupancy == 0      # TLB flushed
        assert rmc.counters["resets"] == 1

    def test_auto_reset_on_failure(self):
        cluster, _g, sessions = build(num_nodes=2)
        cluster.nodes[0].driver.auto_reset_on_failure = True
        cluster.fabric.fail_node(1)

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            yield from session.read_async(1, 0, lbuf, 64)
            yield sim.timeout(2000)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=100000)
        assert cluster.nodes[0].rmc.counters["resets"] == 1
        assert cluster.nodes[0].rmc.itt.in_flight == 0


class TestErrorCompletionRecovery:
    """The retransmission layer's end of recovery (§5.1): a dead link
    produces a ``timeout`` error completion within the retry budget, and
    once the link heals the *same* session keeps working — no RMC reset
    or fresh QP required."""

    def _build_fast_retry(self):
        from repro.node import NodeConfig
        from repro.rmc import RMCConfig

        cluster = Cluster(config=ClusterConfig(
            num_nodes=2,
            node=NodeConfig(rmc=RMCConfig(retransmit_timeout_ns=2000.0,
                                          max_retries=2))))
        gctx = cluster.create_global_context(CTX, SEG)
        sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                                  gctx.entry(n)) for n in range(2)}
        return cluster, sessions

    def test_sever_fail_restore_succeed(self):
        from repro.runtime import RemoteOpFailed

        cluster, sessions = self._build_fast_retry()
        cluster.poke_segment(1, CTX, 0, b"ok" + bytes(62))
        cluster.fabric.sever_link(0, 1)
        outcome = {}

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            try:
                yield from session.read_sync(1, 0, lbuf, 64)
            except RemoteOpFailed as exc:
                outcome["error"] = exc.error
                outcome["failed_at_ns"] = sim.now
            # Driver-level recovery: heal the link, acknowledge the
            # error record (this also clears the failed-peer mark)...
            cluster.fabric.restore_link(0, 1)
            outcome["errors_drained"] = len(session.consume_errors())
            # ...and the very same session/QP carries traffic again.
            yield from session.read_sync(1, 0, lbuf, 64)
            outcome["data"] = session.buffer_peek(lbuf, 2)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=10_000_000)
        assert outcome["error"] == "timeout"
        # Retry budget 2000 * (1 + 2 + 4) = 14 us — the failure is
        # surfaced promptly, not after the 10 ms run bound.
        assert outcome["failed_at_ns"] < 50_000
        assert outcome["errors_drained"] == 1
        assert outcome["data"] == b"ok"
        assert sessions[0].failed_peers == set()
        counters = cluster.nodes[0].rmc.counters.as_dict()
        assert counters["transactions_timed_out"] == 1
