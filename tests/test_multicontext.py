"""Multiple global address spaces coexisting on one fabric (§4.1/§5.1).

"the context identifier (ctx_id) ... is used by all nodes participating
in the same application to create a global address space." Different
applications (contexts) share nodes and the fabric; the CT and the
per-request ctx_id keep their address spaces isolated.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RemoteOpError, RMCSession
from repro.vm import PAGE_SIZE

SEG = 16 * PAGE_SIZE


def build_two_contexts():
    cluster = Cluster(config=ClusterConfig(num_nodes=2))
    ctx_a = cluster.create_global_context(1, SEG)
    ctx_b = cluster.create_global_context(2, SEG)
    return cluster, ctx_a, ctx_b


class TestIsolation:
    def test_reads_resolve_within_their_own_context(self):
        cluster, ctx_a, ctx_b = build_two_contexts()
        cluster.poke_segment(1, 1, 0, b"A" * 64)
        cluster.poke_segment(1, 2, 0, b"B" * 64)
        node0 = cluster.nodes[0]
        session_a = RMCSession(node0.core, ctx_a.qp(0), ctx_a.entry(0))
        session_b = RMCSession(node0.core, ctx_b.qp(0), ctx_b.entry(0))
        buf_a = session_a.alloc_buffer(4096)
        buf_b = session_b.alloc_buffer(4096)

        def app(sim):
            yield from session_a.read_sync(1, 0, buf_a, 64)
            yield from session_b.read_sync(1, 0, buf_b, 64)
            return (session_a.buffer_peek(buf_a, 1),
                    session_b.buffer_peek(buf_b, 1))

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == (b"A", b"B")

    def test_writes_do_not_leak_across_contexts(self):
        cluster, ctx_a, _ctx_b = build_two_contexts()
        node0 = cluster.nodes[0]
        session_a = RMCSession(node0.core, ctx_a.qp(0), ctx_a.entry(0))
        buf = session_a.alloc_buffer(4096)
        session_a.buffer_poke(buf, b"X" * 64)

        def app(sim):
            yield from session_a.write_sync(1, 128, buf, 64)

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert cluster.peek_segment(1, 1, 128, 64) == b"X" * 64
        assert cluster.peek_segment(1, 2, 128, 64) == bytes(64)

    def test_contexts_have_separate_address_spaces(self):
        cluster, ctx_a, ctx_b = build_two_contexts()
        assert ctx_a.entry(0).asid != ctx_b.entry(0).asid
        # Same ctx on different nodes also gets per-node address spaces.
        assert ctx_a.entry(0).address_space is not \
            ctx_a.entry(1).address_space

    def test_bounds_checked_per_context(self):
        # A small and a large context on the same serving node: offsets
        # valid in the large one are violations in the small one.
        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        small = cluster.create_global_context(1, 2 * PAGE_SIZE)
        large = cluster.create_global_context(2, 32 * PAGE_SIZE)
        node0 = cluster.nodes[0]
        s_small = RMCSession(node0.core, small.qp(0), small.entry(0))
        s_large = RMCSession(node0.core, large.qp(0), large.entry(0))
        buf_s = s_small.alloc_buffer(4096)
        buf_l = s_large.alloc_buffer(4096)
        probe_offset = 10 * PAGE_SIZE

        def app(sim):
            yield from s_large.read_sync(1, probe_offset, buf_l, 64)
            with pytest.raises(RemoteOpError, match="segment_violation"):
                yield from s_small.read_sync(1, probe_offset, buf_s, 64)
            return True

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is True

    def test_rrpp_serves_interleaved_contexts(self):
        """Concurrent traffic against two contexts on one destination:
        the stateless RRPP dispatches each request by its ctx_id."""
        cluster, ctx_a, ctx_b = build_two_contexts()
        for i in range(8):
            cluster.poke_segment(1, 1, i * 64, bytes([0xA0 + i]) * 64)
            cluster.poke_segment(1, 2, i * 64, bytes([0xB0 + i]) * 64)
        node0 = cluster.nodes[0]
        results = {}

        def reader(sim, gctx, tag, base_byte):
            session = RMCSession(node0.cores[0], gctx.qp(0),
                                 gctx.entry(0))
            lbuf = session.alloc_buffer(4096)
            got = []
            for i in range(8):
                yield from session.read_sync(1, i * 64, lbuf, 64)
                got.append(session.buffer_peek(lbuf, 1)[0])
            results[tag] = got

        cluster.sim.process(reader(cluster.sim, ctx_a, "a", 0xA0))
        cluster.sim.process(reader(cluster.sim, ctx_b, "b", 0xB0))
        cluster.run()
        assert results["a"] == [0xA0 + i for i in range(8)]
        assert results["b"] == [0xB0 + i for i in range(8)]
        # The CT$ at the server saw both contexts.
        assert cluster.nodes[1].rmc.ct_cache.hits > 0
