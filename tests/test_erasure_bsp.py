"""Erasure-coded BSP checkpointing, end to end.

Acceptance tests for the coded checkpoint modes of
:class:`FaultTolerantBSPEngine`: fault-free runs and every crash
recovery must be *bit-for-bit* identical to the plain engine in every
mode, the dead node's shards must be re-encoded and re-scattered by the
survivors, and a simultaneous double failure that replica mode cannot
survive (a rank and its checkpoint holder dying together) must be fully
recovered by ``rs(k,2)``.
"""

import pytest

from repro.apps import BSPEngine, FaultTolerantBSPEngine, PageRankProgram
from repro.apps.graph import zipf_graph
from repro.telemetry import snapshot


def _graph():
    return zipf_graph(60, avg_degree=4, seed=3)


def _baseline(graph, nodes):
    base = BSPEngine(graph, nodes, seed=7)
    return base.run(PageRankProgram(), max_supersteps=4,
                    stop_on_convergence=False)


def _engine(graph, nodes, mode, every=1):
    return FaultTolerantBSPEngine(graph, nodes, seed=7,
                                  checkpoint_every=every,
                                  checkpoint_mode=mode)


class TestCodedFaultFree:
    def test_coded_modes_bit_exact_and_fully_checkpointed(self):
        graph = _graph()
        expect = _baseline(graph, 4)
        for mode in ("xor", "xor(2)", "rs(2,1)"):
            eng = _engine(graph, 4, mode)
            got = eng.run(PageRankProgram(), max_supersteps=4,
                          stop_on_convergence=False)
            assert got.values == expect.values      # bit-for-bit
            assert got.recoveries == 0
            assert got.checkpoints == 4 * 4         # every rank, step
            assert eng.ckpt_store.stripes_written == 4 * 4

    def test_coded_storage_overhead_beats_replication(self):
        graph = _graph()
        for mode, overhead in (("xor(3)", 4 / 3), ("rs(3,2)", 5 / 3)):
            eng = _engine(graph, 6, mode)
            assert eng.ckpt_code.storage_overhead == pytest.approx(
                overhead)
            assert eng.ckpt_code.storage_overhead < 2.0  # replica cost

    def test_shard_count_validated_against_peers(self):
        with pytest.raises(ValueError):
            _engine(_graph(), 4, "rs(3,2)")         # 5 shards, 3 peers


class TestCodedCrashRecovery:
    def test_single_crash_bit_exact_in_every_mode(self):
        graph = _graph()
        expect = _baseline(graph, 4)
        for mode in ("replica", "xor(2)", "rs(2,1)"):
            eng = _engine(graph, 4, mode)
            eng.controller.schedule_crash(1, at_ns=7_000.0,
                                          restart_after_ns=20_000.0)
            got = eng.run(PageRankProgram(), max_supersteps=4,
                          stop_on_convergence=False)
            assert got.values == expect.values, mode
            assert got.recoveries == 1, mode
            assert eng.membership.evictions == 1

    def test_recovery_rescatters_lost_shards(self):
        """After a crash the survivors re-encode and re-scatter their
        stripes (the dead node held shards of them): the rebuilt-shard
        telemetry must show it, and every surviving rank's stripe must
        be durable again afterwards."""
        graph = _graph()
        eng = _engine(graph, 4, "rs(2,1)")
        eng.controller.schedule_crash(1, at_ns=7_000.0,
                                      restart_after_ns=20_000.0)
        eng.run(PageRankProgram(), max_supersteps=4,
                stop_on_convergence=False)
        snap = snapshot(eng.cluster)
        rebuilt = sum(n.resilience.get("shards_rebuilt", 0)
                      for n in snap.nodes)
        written = sum(n.resilience.get("checkpoint_bytes_written", 0)
                      for n in snap.nodes)
        assert rebuilt > 0
        assert written > 0
        # Every partition's stripe is durable at the final superstep —
        # including the dead rank's, re-striped by its adopter.
        for rank in range(4):
            assert eng.ckpt_store.durable_epoch(rank) == 4

    def test_double_failure_replica_dies_rs_recovers(self):
        """The acceptance case: rank 1 and its ring successor (= its
        replica-checkpoint holder) crash simultaneously. Replica mode
        has lost rank 1's only checkpoint copy and must refuse;
        rs(k,2) reconstructs both partitions from surviving shards and
        finishes bit-for-bit."""
        graph = _graph()
        expect = _baseline(graph, 5)

        eng = _engine(graph, 5, "rs(2,2)")
        eng.controller.schedule_crash(1, at_ns=7_000.0,
                                      restart_after_ns=60_000.0)
        eng.controller.schedule_crash(2, at_ns=7_000.0,
                                      restart_after_ns=60_000.0)
        got = eng.run(PageRankProgram(), max_supersteps=4,
                      stop_on_convergence=False)
        assert got.values == expect.values          # bit-for-bit
        assert got.recoveries == 1                  # one incident
        assert eng.membership.evictions == 2

        eng = _engine(graph, 5, "replica")
        eng.controller.schedule_crash(1, at_ns=7_000.0,
                                      restart_after_ns=60_000.0)
        eng.controller.schedule_crash(2, at_ns=7_000.0,
                                      restart_after_ns=60_000.0)
        with pytest.raises(RuntimeError, match="ring-adjacent"):
            eng.run(PageRankProgram(), max_supersteps=4,
                    stop_on_convergence=False)

    def test_sparser_coded_checkpoints_still_bit_exact(self):
        graph = _graph()
        expect = _baseline(graph, 4)
        eng = _engine(graph, 4, "rs(2,1)", every=2)
        eng.controller.schedule_crash(0, at_ns=7_000.0,
                                      restart_after_ns=60_000.0)
        got = eng.run(PageRankProgram(), max_supersteps=4,
                      stop_on_convergence=False)
        assert got.values == expect.values
        assert got.recoveries == 1
        assert got.checkpoints < 4 * 4              # actually sparser


class TestReplicaPlacementConsultsMembership:
    def test_gray_successor_is_not_a_checkpoint_target(self):
        """Regression for the checkpoint-peer-choice satellite in
        replica mode: a gray-degraded successor (alive on the data
        path, dead to the control plane) must not receive checkpoint
        copies."""
        eng = _engine(_graph(), 4, "replica")
        assert eng._replica_peer_ok(1)
        eng.controller.gray_fail(1)
        assert not eng._replica_peer_ok(1)
