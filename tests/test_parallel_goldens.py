"""Bit-exactness goldens: parallel engine vs the serial engine.

The acceptance criterion of the parallel engine is not "approximately
the same" — with a fixed seed and partition plan, per-node telemetry
and workload results must be *bit-identical* to the serial engine at
every worker count. These tests run PageRank (bulk and fine-grain),
message-passing BFS, and a chaos scenario (link-fault injection plus a
crash/restart epoch) at 1, 2, and 4 workers and compare everything that
is model state. ``engine_stats`` (wall clock, sync rounds) is expressly
excluded — it is measurement, not model.

The 1-worker run goes through ``run_partitioned`` with a single-rank
plan, i.e. the plain serial engine on the same paired-flow-control
configuration: identical code paths, no window protocol.
"""

from __future__ import annotations

import pytest

from repro.apps.bfs import bfs_reference, run_bfs_push
from repro.apps.graph import zipf_graph
from repro.apps.pagerank import run_sonuma_bulk, run_sonuma_fine
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.fabric.faults import FaultInjector, FaultPolicy
from repro.fabric.ni import FabricConfig
from repro.runtime.qp_api import RMCSession, RemoteOpFailed
from repro.sim import PartitionPlan, plan_from_spec, run_partitioned
from repro.telemetry import merge_snapshots, snapshot

NODES = 4
WORKER_COUNTS = (2, 4)


def _paired_config(num_nodes=NODES):
    return ClusterConfig(num_nodes=num_nodes,
                         fabric=FabricConfig(flow_control="paired"))


def _assert_snapshots_equal(got, want):
    """Everything that is model state must match; engine_stats (wall
    clock, rounds) is measurement and excluded by design."""
    assert got.time_ns == want.time_ns
    assert got.nodes == want.nodes
    assert got.fabric_stats == want.fabric_stats


class TestPageRankGoldens:
    @pytest.fixture(scope="class")
    def graph(self):
        return zipf_graph(96, avg_degree=5, seed=11)

    @pytest.fixture(scope="class")
    def bulk_serial(self, graph):
        return run_sonuma_bulk(graph, NODES, supersteps=2,
                               cluster_config=_paired_config(),
                               workers=1)

    @pytest.fixture(scope="class")
    def fine_serial(self, graph):
        return run_sonuma_fine(graph, NODES, supersteps=2,
                               cluster_config=_paired_config(),
                               workers=1)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bulk_bit_identical(self, graph, bulk_serial, workers):
        got = run_sonuma_bulk(graph, NODES, supersteps=2,
                              cluster_config=_paired_config(),
                              workers=workers, transport="inline")
        assert got.ranks == bulk_serial.ranks
        assert got.elapsed_ns == bulk_serial.elapsed_ns
        assert got.remote_reads == bulk_serial.remote_reads
        _assert_snapshots_equal(got.telemetry, bulk_serial.telemetry)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fine_bit_identical(self, graph, fine_serial, workers):
        got = run_sonuma_fine(graph, NODES, supersteps=2,
                              cluster_config=_paired_config(),
                              workers=workers, transport="inline")
        assert got.ranks == fine_serial.ranks
        assert got.elapsed_ns == fine_serial.elapsed_ns
        assert got.remote_reads == fine_serial.remote_reads
        _assert_snapshots_equal(got.telemetry, fine_serial.telemetry)

    @pytest.mark.parametrize("transport", ["process", "shm"])
    def test_bulk_real_transport_bit_identical(self, graph, bulk_serial,
                                               transport):
        """Real forked worker processes — over pipes and over
        shared-memory rings — not the inline shortcut: the transport
        must not affect a single bit."""
        got = run_sonuma_bulk(graph, NODES, supersteps=2,
                              cluster_config=_paired_config(),
                              workers=2, transport=transport)
        assert got.ranks == bulk_serial.ranks
        assert got.elapsed_ns == bulk_serial.elapsed_ns
        _assert_snapshots_equal(got.telemetry, bulk_serial.telemetry)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bulk_adaptive_plan_bit_identical(self, graph, bulk_serial,
                                              workers):
        """The profiled load-aware plan cuts the rack differently but
        must replay the exact same simulation."""
        got = run_sonuma_bulk(graph, NODES, supersteps=2,
                              cluster_config=_paired_config(),
                              workers=workers, partition="adaptive",
                              transport="inline")
        assert got.ranks == bulk_serial.ranks
        assert got.elapsed_ns == bulk_serial.elapsed_ns
        _assert_snapshots_equal(got.telemetry, bulk_serial.telemetry)

    def test_bulk_adaptive_shm_bit_identical(self, graph, bulk_serial):
        """Both new dimensions at once: adaptive plan over the shm
        transport."""
        got = run_sonuma_bulk(graph, NODES, supersteps=2,
                              cluster_config=_paired_config(),
                              workers=2, partition="adaptive",
                              transport="shm")
        assert got.ranks == bulk_serial.ranks
        assert got.elapsed_ns == bulk_serial.elapsed_ns
        _assert_snapshots_equal(got.telemetry, bulk_serial.telemetry)

    def test_default_shared_config_untouched(self, graph):
        """The serial default (shared flow control) is not re-routed
        through any parallel code path and keeps its historical timing
        behaviour class (different credit scheme => different timing is
        allowed; results must still be the correct ranks)."""
        shared = run_sonuma_bulk(graph, NODES, supersteps=2)
        paired = run_sonuma_bulk(graph, NODES, supersteps=2,
                                 cluster_config=_paired_config())
        assert shared.variant == paired.variant == "sonuma-bulk"
        assert shared.ranks == pytest.approx(paired.ranks)


class TestBFSGoldens:
    @pytest.fixture(scope="class")
    def graph(self):
        return zipf_graph(120, avg_degree=5, seed=13)

    @pytest.fixture(scope="class")
    def serial(self, graph):
        return run_bfs_push(graph, NODES, source=0,
                            cluster_config=_paired_config(), workers=1)

    def test_serial_matches_reference(self, graph, serial):
        assert serial.distances == bfs_reference(graph, 0)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_push_bit_identical(self, graph, serial, workers):
        got = run_bfs_push(graph, NODES, source=0,
                           cluster_config=_paired_config(),
                           workers=workers, transport="inline")
        assert got.distances == serial.distances
        assert got.elapsed_ns == serial.elapsed_ns
        assert got.messages == serial.messages
        assert got.levels == serial.levels
        _assert_snapshots_equal(got.telemetry, serial.telemetry)

    @pytest.mark.parametrize("transport", ["process", "shm"])
    def test_push_real_transport_bit_identical(self, graph, serial,
                                               transport):
        got = run_bfs_push(graph, NODES, source=0,
                           cluster_config=_paired_config(),
                           workers=2, transport=transport)
        assert got.distances == serial.distances
        assert got.elapsed_ns == serial.elapsed_ns
        _assert_snapshots_equal(got.telemetry, serial.telemetry)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_push_adaptive_plan_bit_identical(self, graph, serial,
                                              workers):
        got = run_bfs_push(graph, NODES, source=0,
                           cluster_config=_paired_config(),
                           workers=workers, partition="adaptive",
                           transport="inline")
        assert got.distances == serial.distances
        assert got.elapsed_ns == serial.elapsed_ns
        _assert_snapshots_equal(got.telemetry, serial.telemetry)


# ---------------------------------------------------------------------------
# Chaos: link faults + a crash/restart epoch, fully deterministic
# ---------------------------------------------------------------------------

HORIZON = 20_000.0
VICTIM = 1
CRASH_AT = 3_000.0
RESTART_AFTER = 5_000.0
CHAOS_SEED = 77


def _chaos_build(rank, plan):
    """A rack under fire: every node polls every peer with small reads
    while links drop 2% of frames and node 1 fail-stops mid-run and
    reboots. Apps stay alive to the horizon so every rank's clock runs
    to the same end time. The retransmission watchdog is tightened so
    reads into the dead window fail within the horizon instead of
    hanging on the default 100 us timeout."""
    from repro.node.node import NodeConfig
    from repro.rmc.rmc import RMCConfig

    config = ClusterConfig(
        num_nodes=NODES,
        node=NodeConfig(rmc=RMCConfig(retransmit_timeout_ns=1_000.0,
                                      max_retries=2)),
        fabric=FabricConfig(flow_control="paired"))
    cluster = Cluster(config=config, partition=plan, rank=rank)
    cluster.fabric.install_fault_injector(FaultInjector(
        seed=CHAOS_SEED, per_link_streams=True,
        default_policy=FaultPolicy(drop_prob=0.02)))
    controller = cluster.fault_controller(seed=CHAOS_SEED)
    controller.schedule_crash(VICTIM, at_ns=CRASH_AT,
                              restart_after_ns=RESTART_AFTER)
    gctx = cluster.create_global_context(1, 1 << 20)
    sim = cluster.sim
    log = []

    def app(n):
        session = RMCSession(cluster.nodes[n].core, gctx.qp(n),
                             gctx.entry(n))
        lbuf = session.alloc_buffer(4096)
        while sim.now < HORIZON:
            for peer in range(NODES):
                if peer == n:
                    continue
                try:
                    yield from session.read_sync(peer, 64 * n, lbuf, 128)
                    log.append((sim.now, n, peer, "ok"))
                except RemoteOpFailed:
                    log.append((sim.now, n, peer, "fail"))
                except RuntimeError as exc:
                    # e.g. issuing on a halted/rebooted RMC: still a
                    # deterministic, logged outcome.
                    log.append((sim.now, n, peer,
                                f"err:{type(exc).__name__}"))
            yield sim.timeout(200.0 + 50.0 * n)

    for n in plan.nodes_of(rank):
        sim.process(app(n), name=f"chaos{n}")

    def finalize():
        return {"snap": snapshot(cluster), "log": log,
                "timeline": controller.timeline(),
                "stats": controller.stats()}

    return sim, cluster.fabric, finalize


def _run_chaos(workers, transport="inline", partition="contiguous"):
    if partition == "adaptive" and workers > 1:
        plan = plan_from_spec("adaptive", _chaos_build, NODES, workers,
                              profile_until=HORIZON / 4)
    else:
        plan = PartitionPlan.contiguous(NODES, workers)
    run = run_partitioned(_chaos_build, plan, until=HORIZON,
                          transport=transport)
    parts = [run.results[r] for r in sorted(run.results)]
    snap = merge_snapshots([p["snap"] for p in parts])
    log = sorted(sum((p["log"] for p in parts), []))
    timeline = sorted(
        (e for p in parts for e in p["timeline"]),
        key=lambda e: (e["time_ns"], e["kind"], e["node_id"]))
    crashes = sum(p["stats"]["crashes"] for p in parts)
    restarts = sum(p["stats"]["restarts"] for p in parts)
    return run, snap, log, timeline, (crashes, restarts)


class TestChaosGolden:
    @pytest.fixture(scope="class")
    def serial(self):
        return _run_chaos(1)

    def test_scenario_exercises_faults(self, serial):
        _run, snap, log, timeline, (crashes, restarts) = serial
        assert crashes == 1 and restarts == 1
        assert [e["kind"] for e in timeline] == ["crash", "restart"]
        assert any(entry[3] != "ok" for entry in log)
        assert snap.fabric_stats["fault_drops"] > 0
        assert snap.time_ns == HORIZON

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_chaos_bit_identical(self, serial, workers):
        base_run, base_snap, base_log, base_tl, base_counts = serial
        run, snap, log, timeline, counts = _run_chaos(workers)
        assert run.final_time == base_run.final_time
        assert log == base_log
        assert timeline == base_tl
        assert counts == base_counts
        _assert_snapshots_equal(snap, base_snap)

    @pytest.mark.parametrize("transport", ["process", "shm"])
    def test_chaos_real_transport_bit_identical(self, serial, transport):
        _base_run, base_snap, base_log, base_tl, _counts = serial
        _run, snap, log, timeline, _ = _run_chaos(2, transport=transport)
        assert log == base_log
        assert timeline == base_tl
        _assert_snapshots_equal(snap, base_snap)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_chaos_adaptive_plan_bit_identical(self, serial, workers):
        """Crash/restart epochs and fault injection under a profiled
        load-aware cut of the rack: still the exact same simulation
        (the profiling pre-run must not leak state into the real run)."""
        _base_run, base_snap, base_log, base_tl, base_counts = serial
        _run, snap, log, timeline, counts = _run_chaos(
            workers, partition="adaptive")
        assert log == base_log
        assert timeline == base_tl
        assert counts == base_counts
        _assert_snapshots_equal(snap, base_snap)
