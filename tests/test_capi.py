"""Tests for the paper-parity C API wrappers (§5.2 function names).

The PageRank inner loop below is a line-by-line transliteration of the
paper's Fig. 4 code against these wrappers, proving the API surface is
sufficient to express the paper's programming idiom verbatim.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import (
    RMCSession,
    rmc_compare_and_swap,
    rmc_drain_cq,
    rmc_fetch_and_add,
    rmc_read_async,
    rmc_read_sync,
    rmc_wait_for_slot,
    rmc_write_async,
    rmc_write_sync,
)
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 32 * PAGE_SIZE


def build():
    cluster = Cluster(config=ClusterConfig(num_nodes=2))
    gctx = cluster.create_global_context(CTX, SEG)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(2)}
    return cluster, sessions


class TestCAPI:
    def test_sync_read_write(self):
        cluster, sessions = build()
        qp = sessions[0]
        lbuf = qp.alloc_buffer(4096)
        qp.buffer_poke(lbuf, b"capi write")

        def app(sim):
            yield from rmc_write_sync(qp, 1, 0, lbuf, 10)
            yield from rmc_read_sync(qp, 1, 0, lbuf + 1024, 10)
            return qp.buffer_peek(lbuf + 1024, 10)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == b"capi write"

    def test_wait_for_slot_returns_scheduled_slot(self):
        cluster, sessions = build()
        qp = sessions[0]
        lbuf = qp.alloc_buffer(4096)

        def app(sim):
            slot = yield from rmc_wait_for_slot(qp)
            used = yield from rmc_read_async(qp, slot, 1, 0, lbuf, 64)
            assert used == slot
            yield from rmc_drain_cq(qp, lambda cq: None)
            return True

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is True

    def test_stale_slot_rejected(self):
        cluster, sessions = build()
        qp = sessions[0]
        lbuf = qp.alloc_buffer(4096)

        def app(sim):
            slot = yield from rmc_wait_for_slot(qp)
            yield from rmc_read_async(qp, slot, 1, 0, lbuf, 64)
            with pytest.raises(ValueError, match="stale"):
                # Reusing the same slot without waiting again.
                yield from rmc_write_async(qp, slot, 1, 0, lbuf, 64)
            yield from rmc_drain_cq(qp, lambda cq: None)
            return True

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is True

    def test_atomics(self):
        cluster, sessions = build()
        cluster.poke_segment(1, CTX, 0, (5).to_bytes(8, "little"))
        qp = sessions[0]
        lbuf = qp.alloc_buffer(4096)

        def app(sim):
            old = yield from rmc_fetch_and_add(qp, 1, 0, lbuf, 10)
            observed = yield from rmc_compare_and_swap(qp, 1, 0, lbuf,
                                                       compare=15, swap=99)
            return old, observed

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == (5, 15)
        stored = int.from_bytes(cluster.peek_segment(1, CTX, 0, 8),
                                "little")
        assert stored == 99

    def test_fig4_transliteration(self):
        """The paper's Fig. 4 inner loop, written against the C API."""
        cluster, sessions = build()
        # Node 1 holds 8 remote "vertices" of 64B each; byte 0 is the id.
        for i in range(8):
            cluster.poke_segment(1, CTX, i * 64, bytes([i]) * 64)
        qp = sessions[0]
        lbuf = qp.alloc_buffer(64 * qp.qp.size)
        accumulated = []

        def vertex_async(cq_entry):
            # The paper's pagerank_async callback, minus the arithmetic.
            slot = cq_entry.wq_index
            accumulated.append(qp.buffer_peek(lbuf + slot * 64, 1)[0])

        def superstep(sim):
            for i in range(8):
                # flow control
                slot = yield from rmc_wait_for_slot(qp, vertex_async)
                # issue split operation
                yield from rmc_read_async(qp, slot,
                                          1,           # remote node ID
                                          i * 64,      # offset
                                          lbuf + slot * 64,  # local buffer
                                          64,          # len
                                          callback=vertex_async)
            yield from rmc_drain_cq(qp, vertex_async)

        cluster.sim.process(superstep(cluster.sim))
        cluster.run()
        assert sorted(accumulated) == list(range(8))
