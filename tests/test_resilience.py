"""The resilience subsystem: coding, striped checkpoints, op logs.

Property tests (hypothesis) pin the erasure-coding core: encode/decode
round-trips under every survivable loss pattern, for both the XOR
parity code and GF(256) Reed-Solomon, plus the adversarial corners
(all-zero payloads, 1-byte payloads, k=1). The striped checkpoint store
is exercised over the real one-sided data path — scatter, durability
scans, reconstruction, membership-consulted placement — and the
one-sided write log is driven through a full crash/restart/replay
cycle (uncoordinated recovery).
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro import CheckpointUnrecoverable
from repro.apps.kvstore import CodedKVServer, FailoverKVClient
from repro.cluster import Cluster, ClusterConfig
from repro.resilience import (
    OneSidedWriteLog,
    RSCode,
    StripedCheckpointStore,
    XORCode,
)
from repro.resilience.coding import parse_checkpoint_mode
from repro.runtime import RMCSession
from repro.telemetry import format_report, snapshot
from repro.vm import PAGE_SIZE

CTX = 1
INTERVAL = 2_000.0
LEASE = 6_000.0


# -- coding round trips (property-tested) ------------------------------------

def _drop_patterns(code):
    """Every survivable loss pattern: up to m shard indices removed."""
    indices = range(code.num_shards)
    patterns = [()]
    for count in range(1, code.m + 1):
        patterns.extend(itertools.combinations(indices, count))
    return patterns


def _assert_round_trip(code, data):
    shards = code.encode(data)
    assert len(shards) == code.num_shards
    assert len({len(s) for s in shards}) == 1          # equal length
    assert len(shards[0]) == code.shard_length(len(data))
    for dropped in _drop_patterns(code):
        survivors = {i: s for i, s in enumerate(shards)
                     if i not in dropped}
        assert code.decode(survivors, len(data)) == data, \
            f"{code.name}: round trip failed dropping {dropped}"


@settings(max_examples=60, derandomize=True, deadline=None)
@given(data=st.binary(min_size=0, max_size=512),
       k=st.integers(min_value=1, max_value=6))
def test_xor_round_trip_all_single_losses(data, k):
    _assert_round_trip(XORCode(k), data)


@settings(max_examples=60, derandomize=True, deadline=None)
@given(data=st.binary(min_size=0, max_size=512),
       k=st.integers(min_value=1, max_value=5),
       m=st.integers(min_value=1, max_value=3))
def test_rs_round_trip_all_loss_patterns(data, k, m):
    _assert_round_trip(RSCode(k, m), data)


class TestCodingAdversarialCases:
    def test_all_zero_payload(self):
        for code in (XORCode(3), RSCode(3, 2)):
            _assert_round_trip(code, bytes(300))

    def test_one_byte_payload(self):
        for code in (XORCode(4), RSCode(2, 2)):
            _assert_round_trip(code, b"\xa5")

    def test_k_equals_one_is_mirroring(self):
        code = XORCode(1)
        data = b"hello world"
        shards = code.encode(data)
        # With k=1 the parity IS the data: both shards identical.
        assert shards[0] == shards[1]
        _assert_round_trip(code, data)
        _assert_round_trip(RSCode(1, 3), data)

    def test_length_not_divisible_by_k(self):
        _assert_round_trip(RSCode(3, 2), b"x" * 100)   # 100 % 3 != 0

    def test_xor_cannot_repair_double_loss(self):
        code = XORCode(3)
        shards = code.encode(b"y" * 96)
        survivors = {2: shards[2], 3: shards[3]}
        with pytest.raises(ValueError):
            code.decode(survivors, 96)

    def test_rs_refuses_too_few_shards(self):
        code = RSCode(3, 2)
        shards = code.encode(b"z" * 99)
        with pytest.raises(ValueError):
            code.decode({0: shards[0], 1: shards[1]}, 99)

    def test_parity_actually_used(self):
        """Decoding from parity-heavy survivor sets must not just
        concatenate data shards."""
        code = RSCode(2, 2)
        data = bytes(range(100))
        shards = code.encode(data)
        assert code.decode({2: shards[2], 3: shards[3]}, 100) == data


class TestParseCheckpointMode:
    def test_modes(self):
        assert parse_checkpoint_mode("replica") == ("replica", None)
        mode, code = parse_checkpoint_mode("xor(3)")
        assert (mode, code.k, code.m) == ("xor", 3, 1)
        mode, code = parse_checkpoint_mode("rs(3, 2)")
        assert (mode, code.k, code.m) == ("rs", 3, 2)

    def test_xor_defaults_to_peer_count(self):
        _, code = parse_checkpoint_mode("xor", num_peers=5)
        assert (code.k, code.num_shards) == (4, 5)

    def test_rejects_garbage_and_oversubscription(self):
        with pytest.raises(ValueError):
            parse_checkpoint_mode("raid6")
        with pytest.raises(ValueError):
            parse_checkpoint_mode("rs(3,2)", num_peers=4)  # 5 shards


# -- the striped checkpoint store over the real data path --------------------

def _build_cluster(num_nodes, segment=64 * PAGE_SIZE):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    membership = cluster.enable_membership(interval_ns=INTERVAL,
                                           lease_ns=LEASE)
    controller = cluster.fault_controller(seed=0)
    gctx = cluster.create_global_context(CTX, segment)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(num_nodes)}
    return cluster, membership, controller, sessions


def _make_store(cluster, code, membership=None, controller=None,
                num_sources=None):
    n = num_sources if num_sources is not None else len(cluster.nodes)
    return StripedCheckpointStore(
        cluster, CTX, code, num_sources=n,
        shard_base=4096, shard_stride=512, hdr_base=64 * 1024,
        membership=membership, controller=controller)


class TestStripedCheckpointStore:
    def test_scatter_durability_and_reconstruct(self):
        cluster, ms, ctrl, sessions = _build_cluster(5)
        code = RSCode(2, 2)
        store = _make_store(cluster, code, membership=ms, controller=ctrl)
        data = bytes((7 * i) % 256 for i in range(900))
        done = {}

        def writer(sim):
            wrote = yield from store.write_stripe(sessions[0], 0, data,
                                                  progress=1, slot=0)
            done["wrote"] = wrote

        cluster.sim.process(writer(cluster.sim))
        cluster.run(until=5_000_000)
        assert done["wrote"] == code.num_shards
        assert store.durable_epoch(0) == 1
        assert store.reconstruct(0, 1, len(data)) == data
        # Shards landed on distinct peers, never on the source.
        located = store.scan(0)[1]
        hosts = [h for h, _slot in located.values()]
        assert len(set(hosts)) == code.num_shards
        assert 0 not in hosts

    def test_reconstruct_survives_m_losses_then_raises_beyond(self):
        cluster, ms, ctrl, sessions = _build_cluster(6)
        code = RSCode(3, 2)
        store = _make_store(cluster, code, membership=ms, controller=ctrl)
        data = bytes(range(256)) * 3

        def writer(sim):
            yield from store.write_stripe(sessions[0], 0, data,
                                          progress=2, slot=0)

        cluster.sim.process(writer(cluster.sim))
        cluster.run(until=5_000_000)
        holders = sorted({h for h, _ in store.scan(0)[2].values()})
        # m losses: still reconstructable.
        ctrl.crash(holders[0])
        ctrl.crash(holders[1])
        assert store.reconstruct(0, 2, len(data)) == data
        # m + 1 losses: typed unrecoverable with full diagnostics.
        ctrl.crash(holders[2])
        with pytest.raises(CheckpointUnrecoverable) as info:
            store.reconstruct(0, 2, len(data))
        err = info.value
        assert err.source == 0
        assert err.epoch == 2
        assert err.needed == code.k
        assert err.have == 2
        assert len(err.missing_shards) == 3
        assert "epoch 2" in str(err) and "unrecoverable" in str(err)
        assert store.durable_epoch(0) == 0

    def test_placement_consults_membership_and_controller(self):
        """Regression for the checkpoint-peer-choice satellite: shards
        must never be placed on crashed, gray-degraded, or evicted
        nodes."""
        cluster, ms, ctrl, sessions = _build_cluster(6)
        code = XORCode(2)
        store = _make_store(cluster, code, membership=ms, controller=ctrl)

        def scenario(sim):
            yield sim.timeout(INTERVAL)     # let everyone join first
            ctrl.crash(2)                   # down (and soon evicted)
            ctrl.gray_fail(3)               # up on data path, degraded
            yield sim.timeout(10 * LEASE)   # let the lease expire

        cluster.sim.process(scenario(cluster.sim))
        cluster.run(until=20 * LEASE)
        assert not ms.is_live(2)
        placed = store.place(0)
        assert placed, "healthy peers remain, stripe must be placeable"
        assert 2 not in placed and 3 not in placed
        assert 0 not in placed              # never self
        assert len(set(placed)) == len(placed)
        # Graceful m degradation: with only k healthy peers left the
        # store still writes k shards; below k it refuses outright.
        ctrl.crash(4)
        assert len(store.place(0)) == 2     # 1 and 5 remain
        ctrl.crash(5)
        assert store.place(0) == []

    def test_double_buffered_slots_keep_previous_epoch(self):
        cluster, ms, ctrl, sessions = _build_cluster(4)
        code = XORCode(2)
        store = _make_store(cluster, code, membership=ms, controller=ctrl)
        first = b"\x01" * 500
        second = b"\x02" * 500

        def writer(sim):
            yield from store.write_stripe(sessions[0], 0, first,
                                          progress=1, slot=0)
            yield from store.write_stripe(sessions[0], 0, second,
                                          progress=2, slot=1)

        cluster.sim.process(writer(cluster.sim))
        cluster.run(until=5_000_000)
        assert store.durable_epoch(0) == 2
        assert store.reconstruct(0, 1, 500) == first
        assert store.reconstruct(0, 2, 500) == second


# -- one-sided write log: uncoordinated recovery end to end -------------------

class TestOneSidedWriteLog:
    def test_crash_restart_replay_restores_remote_state(self):
        cluster, ms, ctrl, sessions = _build_cluster(3)
        log = OneSidedWriteLog(counters=cluster.resilience_counters(0))
        session = sessions[0]
        session.attach_write_log(log)
        buf = session.alloc_buffer(256)
        outcome = {}

        def scenario(sim):
            for i in range(4):
                session.buffer_poke(buf, bytes([i + 1]) * 64)
                yield from session.write_sync(1, i * 64, buf, 64)
            assert log.records_logged == 4
            assert log.pending_bytes(1) == 256
            ctrl.crash(1)
            ctrl.restart(1)                 # wipes memory
            yield sim.timeout(1_000)
            assert cluster.peek_segment(1, CTX, 0, 256) == bytes(256)
            replayed = yield from log.replay(session, 1)
            outcome["replayed"] = replayed
            outcome["bytes"] = cluster.peek_segment(1, CTX, 0, 256)

        cluster.sim.process(scenario(cluster.sim))
        cluster.run(until=10_000_000)
        expect = b"".join(bytes([i + 1]) * 64 for i in range(4))
        assert outcome["replayed"] == 4
        assert outcome["bytes"] == expect
        # Replay itself was not re-logged (no self-feeding) ...
        assert log.records_logged == 4
        assert log.pending_bytes(1) == 256  # still replayable again
        # ... and truncation empties the log at checkpoint durability.
        assert log.truncate(1) == 4
        assert log.pending(1) == []
        assert cluster.resilience_counters(0).log_replays == 4

    def test_truncate_upto_seq_keeps_later_writes(self):
        log = OneSidedWriteLog()
        for i in range(5):
            log.record(1, i * 64, b"x" * 8, time_ns=float(i))
        assert log.truncate(1, upto_seq=2) == 3
        assert [e.seq for e in log.pending(1)] == [3, 4]


# -- coded KV backups + degraded reads ----------------------------------------

class TestCodedKVDegradedReads:
    KEYS = {k: bytes([k]) * 8 for k in range(1, 13)}

    def test_primary_loss_served_by_decoding_shards(self):
        cluster, ms, ctrl, sessions = _build_cluster(5)
        code = RSCode(2, 1)
        server = CodedKVServer(sessions[1], backups=[2, 3, 4], code=code,
                               num_buckets=64)
        client = FailoverKVClient(
            sessions[0], [1], num_buckets=64, membership=ms, code=code,
            shard_nids=[2, 3, 4],
            counters=cluster.resilience_counters(0))
        outcome = {}

        def scenario(sim):
            for k, v in self.KEYS.items():
                yield from server.put_coded(k, v)
            ctrl.crash(1)                   # primary gone
            yield sim.timeout(3 * LEASE)
            served = {}
            for k in self.KEYS:
                served[k] = yield from client.get(k)
            outcome["after_primary"] = served
            ctrl.crash(3)                   # one backup gone too (m=1)
            yield sim.timeout(3 * LEASE)
            served = {}
            for k in self.KEYS:
                served[k] = yield from client.get(k)
            outcome["after_backup"] = served
            outcome["missing"] = yield from client.get(999)

        cluster.sim.process(scenario(cluster.sim))
        cluster.run(until=10_000_000)
        assert outcome["after_primary"] == self.KEYS   # no lost acked PUT
        assert outcome["after_backup"] == self.KEYS    # m losses survived
        assert outcome["missing"] is None
        stats = client.availability
        assert stats.degraded_reads == 25
        assert stats.gets_failed == 0
        assert stats.availability == 1.0
        assert server.puts_acked == len(self.KEYS)
        assert server.replica_writes == len(self.KEYS) * code.num_shards
        assert cluster.resilience_counters(0).degraded_reads == 25

    def test_backup_count_must_match_shard_count(self):
        cluster, ms, ctrl, sessions = _build_cluster(3)
        with pytest.raises(ValueError):
            CodedKVServer(sessions[1], backups=[2], code=RSCode(2, 1),
                          num_buckets=64)


# -- telemetry ----------------------------------------------------------------

class TestResilienceTelemetry:
    def test_counters_surface_in_snapshot_and_report(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        counters = cluster.resilience_counters(0)
        counters.checkpoint_bytes_written += 4096
        counters.shards_rebuilt += 3
        counters.log_replays += 2
        counters.degraded_reads += 1
        snap = snapshot(cluster)
        assert snap.node(0).resilience == {
            "checkpoint_bytes_written": 4096,
            "shards_rebuilt": 3,
            "log_replays": 2,
            "degraded_reads": 1,
        }
        assert snap.node(1).resilience == {}           # untouched node
        report = format_report(snap)
        assert "resilience" in report
        assert "shards_rebuilt" in report

    def test_quiet_nodes_stay_silent_in_report(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        report = format_report(snapshot(cluster))
        assert "resilience" not in report
