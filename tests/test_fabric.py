"""Unit + property tests for the NUMA fabric (crossbar, routed, topology)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import (
    CrossbarFabric,
    FabricConfig,
    RoutedFabric,
    complete,
    mesh2d,
    ring,
    torus2d,
    torus3d,
)
from repro.protocol import Opcode, ReplyPacket, RequestPacket, VirtualLane
from repro.sim import Simulator


def make_request(dst, src, tid=0, offset=0):
    return RequestPacket(dst_nid=dst, src_nid=src, op=Opcode.RREAD,
                         ctx_id=1, offset=offset, tid=tid)


def make_reply(dst, src, tid=0, payload=None):
    return ReplyPacket(dst_nid=dst, src_nid=src, tid=tid, offset=0,
                       payload=payload)


class TestCrossbar:
    def test_delivery_latency(self):
        sim = Simulator()
        fabric = CrossbarFabric(sim, FabricConfig(link_latency_ns=50,
                                                  link_bandwidth_gbps=16))
        ni0 = fabric.attach(0)
        ni1 = fabric.attach(1)
        arrivals = []

        def sender(sim):
            yield ni0.inject(make_request(dst=1, src=0))

        def receiver(sim):
            pkt = yield from ni1.receive(VirtualLane.REQUEST)
            arrivals.append((sim.now, pkt))

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert len(arrivals) == 1
        at, pkt = arrivals[0]
        # serialization (16B / 16B-per-ns = 1ns) + 50ns flat latency
        assert at == pytest.approx(51.0)
        assert pkt.dst_nid == 1

    def test_request_and_reply_lanes_are_independent(self):
        sim = Simulator()
        fabric = CrossbarFabric(sim)
        ni0 = fabric.attach(0)
        ni1 = fabric.attach(1)
        got = []

        def sender(sim):
            yield ni0.inject(make_request(dst=1, src=0, tid=7))
            yield ni0.inject(make_reply(dst=1, src=0, tid=9))

        def req_receiver(sim):
            pkt = yield from ni1.receive(VirtualLane.REQUEST)
            got.append(("req", pkt.tid))

        def rep_receiver(sim):
            pkt = yield from ni1.receive(VirtualLane.REPLY)
            got.append(("rep", pkt.tid))

        sim.process(req_receiver(sim))
        sim.process(rep_receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert ("req", 7) in got and ("rep", 9) in got

    def test_fifo_per_lane(self):
        sim = Simulator()
        fabric = CrossbarFabric(sim)
        ni0 = fabric.attach(0)
        ni1 = fabric.attach(1)
        order = []

        def sender(sim):
            for tid in range(10):
                yield ni0.inject(make_request(dst=1, src=0, tid=tid))

        def receiver(sim):
            for _ in range(10):
                pkt = yield from ni1.receive(VirtualLane.REQUEST)
                order.append(pkt.tid)

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert order == list(range(10))

    def test_credit_backpressure_bounds_rx_occupancy(self):
        # With k credits and a receiver that never drains, only k packets
        # can ever occupy the destination rx buffer.
        sim = Simulator()
        cfg = FabricConfig(vl_credits=4)
        fabric = CrossbarFabric(sim, cfg)
        ni0 = fabric.attach(0)
        ni1 = fabric.attach(1)

        def sender(sim):
            for tid in range(20):
                yield ni0.inject(make_request(dst=1, src=0, tid=tid))

        sim.process(sender(sim))
        sim.run(until=100000)
        assert len(ni1.rx[VirtualLane.REQUEST]) == 4

    def test_serialization_shares_injection_port(self):
        # Two full-line packets from the same node serialize one after
        # the other: second arrival is one serialization time later.
        sim = Simulator()
        cfg = FabricConfig(link_latency_ns=50, link_bandwidth_gbps=16)
        fabric = CrossbarFabric(sim, cfg)
        ni0 = fabric.attach(0)
        ni1 = fabric.attach(1)
        arrivals = []

        def sender(sim):
            payload = b"\x00" * 64
            yield ni0.inject(make_reply(dst=1, src=0, tid=0, payload=payload))
            yield ni0.inject(make_reply(dst=1, src=0, tid=1, payload=payload))

        def receiver(sim):
            for _ in range(2):
                yield from ni1.receive(VirtualLane.REPLY)
                arrivals.append(sim.now)

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        ser = 80 / 16  # 5 ns per 80-byte packet
        assert arrivals[0] == pytest.approx(ser + 50)
        assert arrivals[1] == pytest.approx(2 * ser + 50)

    def test_failed_node_drops_and_notifies(self):
        sim = Simulator()
        fabric = CrossbarFabric(sim)
        ni0 = fabric.attach(0)
        fabric.attach(1)
        failures = []
        ni0.on_delivery_failure = lambda pkt: failures.append(pkt)
        fabric.fail_node(1)

        def sender(sim):
            yield ni0.inject(make_request(dst=1, src=0))

        sim.process(sender(sim))
        sim.run()
        assert len(failures) == 1
        assert fabric.packets_dropped == 1

    def test_severed_link_is_bidirectional(self):
        sim = Simulator()
        fabric = CrossbarFabric(sim)
        fabric.attach(0)
        fabric.attach(1)
        fabric.sever_link(0, 1)
        assert not fabric._reachable(0, 1)
        assert not fabric._reachable(1, 0)
        fabric.restore_link(1, 0)
        assert fabric._reachable(0, 1)

    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        fabric = CrossbarFabric(sim)
        fabric.attach(0)
        with pytest.raises(ValueError):
            fabric.attach(0)


class TestTopology:
    def test_crossbar_is_single_hop(self):
        topo = complete(8)
        assert topo.diameter() == 1
        assert all(topo.hops(0, d) == 1 for d in range(1, 8))

    def test_ring_hops(self):
        topo = ring(8)
        assert topo.hops(0, 4) == 4
        assert topo.hops(0, 7) == 1  # wraparound

    def test_torus2d_wraparound(self):
        topo = torus2d(4, 4)
        # Opposite corners are 2+2=4 hops in a mesh but 2 in a 4x4 torus
        # (1 wrap hop per dimension): node 0=(0,0), node 15=(3,3).
        assert topo.hops(0, 15) == 2

    def test_mesh_no_wraparound(self):
        topo = mesh2d(4, 4)
        assert topo.hops(0, 15) == 6

    def test_torus3d_size(self):
        topo = torus3d(3, 3, 3)
        assert topo.num_nodes == 27
        assert all(len(topo.neighbors(n)) == 6 for n in topo.graph.nodes)

    def test_route_follows_next_hops(self):
        topo = torus2d(3, 3)
        path = topo.route(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) - 1 == topo.hops(0, 8)

    @given(st.integers(min_value=3, max_value=6),
           st.integers(min_value=3, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_property_routes_terminate_everywhere(self, w, h):
        topo = torus2d(w, h)
        n = topo.num_nodes
        for src in range(0, n, max(1, n // 5)):
            for dst in range(0, n, max(1, n // 5)):
                if src != dst:
                    path = topo.route(src, dst)
                    assert path[-1] == dst
                    assert len(path) - 1 == topo.hops(src, dst)


class TestRoutedFabric:
    def _net(self, topo, cfg=None):
        sim = Simulator()
        fabric = RoutedFabric(sim, topo, cfg or FabricConfig(
            link_latency_ns=10, router_delay_ns=11, link_bandwidth_gbps=16))
        nis = {n: fabric.attach(n) for n in topo.graph.nodes}
        return sim, fabric, nis

    def test_single_hop_delivery(self):
        sim, fabric, nis = self._net(ring(4))
        arrivals = []

        def sender(sim):
            yield nis[0].inject(make_request(dst=1, src=0))

        def receiver(sim):
            pkt = yield from nis[1].receive(VirtualLane.REQUEST)
            arrivals.append((sim.now, pkt.tid))

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert len(arrivals) == 1

    def test_multi_hop_latency_scales_with_distance(self):
        topo = ring(8)
        sim, fabric, nis = self._net(topo)
        arrivals = {}

        def sender(sim):
            yield nis[0].inject(make_request(dst=1, src=0, tid=1))
            yield nis[0].inject(make_request(dst=4, src=0, tid=4))

        def receiver(sim, nid):
            pkt = yield from nis[nid].receive(VirtualLane.REQUEST)
            arrivals[pkt.tid] = sim.now

        sim.process(receiver(sim, 1))
        sim.process(receiver(sim, 4))
        sim.process(sender(sim))
        sim.run()
        # 4 hops must take noticeably longer than 1 hop.
        assert arrivals[4] > arrivals[1] + 3 * 10

    def test_all_pairs_delivery_on_torus(self):
        topo = torus2d(3, 3)
        sim, fabric, nis = self._net(topo)
        received = []

        def sender(sim, src):
            for dst in topo.graph.nodes:
                if dst != src:
                    yield nis[src].inject(make_request(dst=dst, src=src,
                                                       tid=src * 100 + dst))

        def receiver(sim, nid, expect):
            for _ in range(expect):
                pkt = yield from nis[nid].receive(VirtualLane.REQUEST)
                received.append((nid, pkt.src_nid))

        n = topo.num_nodes
        for node in topo.graph.nodes:
            sim.process(receiver(sim, node, n - 1))
        for node in topo.graph.nodes:
            sim.process(sender(sim, node))
        sim.run()
        assert len(received) == n * (n - 1)

    def test_attach_unknown_node_rejected(self):
        sim = Simulator()
        fabric = RoutedFabric(sim, ring(4))
        with pytest.raises(ValueError):
            fabric.attach(99)
