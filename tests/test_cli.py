"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_microbench_defaults(self):
        args = build_parser().parse_args(["microbench"])
        assert args.command == "microbench"
        assert 64 in args.sizes
        assert not args.dev

    def test_pagerank_args(self):
        args = build_parser().parse_args(
            ["pagerank", "--vertices", "512", "--nodes", "2"])
        assert args.vertices == 512
        assert args.nodes == [2]


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "L1: 32 KB" in out
        assert "DRAM: 60.0 ns" in out

    def test_microbench_runs_small(self, capsys):
        assert main(["microbench", "--sizes", "64", "--iters", "4"]) == 0
        out = capsys.readouterr().out
        assert "local DRAM read" in out

    def test_kvstore_runs_small(self, capsys):
        assert main(["kvstore", "--keys", "50", "--gets", "20",
                     "--buckets", "256"]) == 0
        out = capsys.readouterr().out
        assert "probes/GET" in out
