"""Tests for cluster telemetry aggregation."""

from repro import telemetry
from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE

CTX = 1


def run_some_traffic():
    cluster = Cluster(config=ClusterConfig(num_nodes=2))
    gctx = cluster.create_global_context(CTX, 16 * PAGE_SIZE)
    session = RMCSession(cluster.nodes[0].core, gctx.qp(0), gctx.entry(0))
    lbuf = session.alloc_buffer(4096)

    def app(sim):
        for i in range(5):
            yield from session.read_sync(1, i * 64, lbuf, 64)

    cluster.sim.process(app(cluster.sim))
    cluster.run()
    return cluster


class TestSnapshot:
    def test_snapshot_counts_traffic(self):
        cluster = run_some_traffic()
        snap = telemetry.snapshot(cluster)
        assert snap.time_ns > 0
        assert len(snap.nodes) == 2
        # Node 0 issued; node 1 served.
        assert snap.node(0).rmc_counters["wq_requests"] == 5
        assert snap.node(0).rmc_counters["cq_completions"] == 5
        assert snap.node(1).rmc_counters["requests_served"] == 5
        # Conservation: every packet sent was received by someone.
        assert snap.total("ni_packets_sent") == \
            snap.total("ni_packets_received")
        assert snap.fabric_stats["delivered"] == \
            snap.total("ni_packets_sent")

    def test_snapshot_mmu_fields(self):
        cluster = run_some_traffic()
        snap = telemetry.snapshot(cluster)
        node1 = snap.node(1)
        assert 0.0 <= node1.tlb_hit_rate <= 1.0
        assert node1.maq_peak >= 1
        assert snap.node(0).itt_peak >= 1

    def test_format_report_mentions_each_node(self):
        cluster = run_some_traffic()
        report = telemetry.format_report(telemetry.snapshot(cluster))
        assert "node 0:" in report and "node 1:" in report
        assert "served=5" in report
        assert "dram bytes" in report

    def test_error_counters_surface_in_report(self):
        from repro.runtime import RemoteOpError

        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        gctx = cluster.create_global_context(CTX, 2 * PAGE_SIZE)
        session = RMCSession(cluster.nodes[0].core, gctx.qp(0),
                             gctx.entry(0))
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            try:
                yield from session.read_sync(1, 10 * PAGE_SIZE, lbuf, 64)
            except RemoteOpError:
                pass

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        report = telemetry.format_report(telemetry.snapshot(cluster))
        assert "errors_segment_violation" in report
