"""Sanity tests for the evaluation harnesses (quick configurations)."""

import pytest

from repro.workloads import (
    PULL_ONLY,
    PUSH_ONLY,
    local_dram_latency,
    pagerank_speedups,
    remote_iops,
    remote_read_bandwidth,
    remote_read_latency,
    send_recv_bandwidth,
    send_recv_latency,
)


class TestReadLatencyHarness:
    def test_small_read_near_paper_value(self):
        rows = remote_read_latency(sizes=(64,), iterations=8)
        assert 200 < rows[0].mean_ns < 450       # paper: ~300 ns
        assert rows[0].p99_ns >= rows[0].p50_ns

    def test_latency_within_4x_local_dram(self):
        remote = remote_read_latency(sizes=(64,), iterations=8)[0].mean_ns
        local = local_dram_latency()
        assert remote / local < 5.0

    def test_latency_grows_with_size(self):
        rows = remote_read_latency(sizes=(64, 4096), iterations=5)
        assert rows[1].mean_ns > rows[0].mean_ns

    def test_double_sided_not_faster(self):
        single = remote_read_latency(sizes=(4096,), iterations=5)
        double = remote_read_latency(sizes=(4096,), iterations=5,
                                     double_sided=True)
        assert double[0].mean_ns >= single[0].mean_ns * 0.9


class TestBandwidthHarness:
    def test_8kb_reads_saturate_dram(self):
        rows = remote_read_bandwidth(sizes=(8192,), requests=60, warmup=10)
        assert 8.0 < rows[0].gbytes_per_sec < 11.0   # paper: 9.6 GB/s

    def test_iops_near_10m(self):
        assert 7.0 < remote_iops(requests=150, warmup=30) < 15.0

    def test_double_sided_aggregate_higher(self):
        single = remote_read_bandwidth(sizes=(8192,), requests=50,
                                       warmup=10)[0].gbytes_per_sec
        double = remote_read_bandwidth(sizes=(8192,), requests=50,
                                       warmup=10,
                                       double_sided=True)[0].gbytes_per_sec
        assert double > 1.5 * single


class TestNetpipeHarness:
    def test_push_beats_pull_small(self):
        push = send_recv_latency(sizes=(32,), threshold=PUSH_ONLY,
                                 rounds=4)[0].latency_us
        pull = send_recv_latency(sizes=(32,), threshold=PULL_ONLY,
                                 rounds=4)[0].latency_us
        assert push < pull

    def test_pull_beats_push_large(self):
        push = send_recv_bandwidth(sizes=(8192,), threshold=PUSH_ONLY,
                                   messages=12, warmup=3)[0].gbps
        pull = send_recv_bandwidth(sizes=(8192,), threshold=PULL_ONLY,
                                   messages=12, warmup=3)[0].gbps
        assert pull > 2 * push


class TestPageRankSweep:
    def test_tiny_sweep_shapes(self):
        rows = pagerank_speedups(node_counts=(2,), num_vertices=1024,
                                 avg_degree=5, llc_total_bytes=16 * 1024)
        row = rows[0]
        assert row.shm > 1.2          # 2 threads beat 1
        assert row.bulk > 0.5         # bulk is in the same regime
        assert row.fine < row.shm     # fine-grain pays per-edge overhead
