"""Unit tests for the RMC's MMU block (TLB + page walker + MAQ)."""

import pytest

from repro.memory import MemorySystem
from repro.rmc import MMUConfig, RMCMMU
from repro.sim import Simulator
from repro.vm import PAGE_SIZE, AddressSpace, FrameAllocator, PhysicalMemory


def make_mmu(sim=None, config=None):
    sim = sim or Simulator()
    phys = PhysicalMemory(64 * PAGE_SIZE)
    system = MemorySystem(sim, phys)
    port = system.register_agent("rmc")
    mmu = RMCMMU(sim, port, config or MMUConfig())
    frames = FrameAllocator(phys, reserved_bytes=8 * PAGE_SIZE)
    space = AddressSpace(asid=1, frames=frames)
    return sim, mmu, space


class TestTranslate:
    def test_first_translation_walks_then_hits(self):
        sim, mmu, space = make_mmu()
        vaddr = space.allocate(PAGE_SIZE)

        def proc(sim):
            t0 = sim.now
            paddr1 = yield from mmu.translate(1, space.page_table, vaddr)
            cold = sim.now - t0
            t1 = sim.now
            paddr2 = yield from mmu.translate(1, space.page_table, vaddr)
            warm = sim.now - t1
            return paddr1, paddr2, cold, warm

        proc = sim.process(proc(sim))
        sim.run()
        paddr1, paddr2, cold, warm = proc.value
        assert paddr1 == paddr2 == space.translate(vaddr)
        # Cold: TLB probe + 4 walk levels; warm: TLB probe only.
        assert cold == pytest.approx(0.5 + 4 * 4.5)
        assert warm == pytest.approx(0.5)
        assert mmu.walks == 1
        assert mmu.translations == 2

    def test_distinct_pages_walk_separately(self):
        sim, mmu, space = make_mmu()
        base = space.allocate(3 * PAGE_SIZE)

        def proc(sim):
            for page in range(3):
                yield from mmu.translate(1, space.page_table,
                                         base + page * PAGE_SIZE)

        sim.process(proc(sim))
        sim.run()
        assert mmu.walks == 3

    def test_unmapped_address_faults(self):
        from repro.vm import PageFault

        sim, mmu, space = make_mmu()

        def proc(sim):
            with pytest.raises(PageFault):
                yield from mmu.translate(1, space.page_table, 0xDEAD000)
            return True

        proc = sim.process(proc(sim))
        sim.run()
        assert proc.value is True


class TestMAQ:
    def test_maq_bounds_concurrent_accesses(self):
        sim, mmu, _space = make_mmu(
            config=MMUConfig(maq_entries=2))
        peak = []

        def accessor(sim, addr):
            yield from mmu.access(addr)
            peak.append(mmu.maq.peak_in_use)

        for i in range(8):
            sim.process(accessor(sim, i * 0x10000))
        sim.run()
        assert mmu.maq.peak_in_use == 2  # never exceeds capacity

    def test_walks_also_go_through_maq(self):
        sim, mmu, space = make_mmu(config=MMUConfig(maq_entries=1))
        vaddr = space.allocate(PAGE_SIZE)

        def proc(sim):
            yield from mmu.translate(1, space.page_table, vaddr)

        sim.process(proc(sim))
        sim.run()
        assert mmu.maq.total_acquires == 4  # one per radix level

    def test_reset_flushes_tlb(self):
        sim, mmu, space = make_mmu()
        vaddr = space.allocate(PAGE_SIZE)

        def proc(sim):
            yield from mmu.translate(1, space.page_table, vaddr)

        sim.process(proc(sim))
        sim.run()
        assert mmu.tlb.occupancy == 1
        mmu.reset()
        assert mmu.tlb.occupancy == 0


class TestFunctionalPath:
    def test_read_write_bytes(self):
        _sim, mmu, _space = make_mmu()
        mmu.write_bytes(0x4000, b"mmu data")
        assert mmu.read_bytes(0x4000, 8) == b"mmu data"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MMUConfig(maq_entries=0)
