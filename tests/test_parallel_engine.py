"""Unit tests for the conservative parallel engine.

Covers the partition plan, the window primitives on the serial kernel
(`run_window` / `peek_next_event_time`), the typed misconfiguration
errors (zero lookahead, unowned nodes, unsupported combinations), the
end-of-instant delivery stager's canonical ordering (simultaneous
timestamps at a partition boundary), and transport-level equality on a
small cluster workload. Whole-application bit-exactness goldens live in
``test_parallel_goldens.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.fabric.faults import FaultInjector
from repro.fabric.ni import FabricConfig
from repro.fabric.partition import PartitionedCrossbar, _InstantStager
from repro.runtime.qp_api import RMCSession
from repro.sim import (
    PartitionError,
    PartitionPlan,
    RemoteMessage,
    Simulator,
    ZeroLookaheadError,
    run_partitioned,
)
from repro.sim.parallel import MSG_FRAME
from repro.telemetry import merge_snapshots, snapshot


class TestPartitionPlan:
    def test_contiguous_blocks(self):
        plan = PartitionPlan.contiguous(8, 4)
        assert plan.owner == (0, 0, 1, 1, 2, 2, 3, 3)
        assert plan.num_nodes == 8
        assert plan.num_parts == 4

    def test_contiguous_uneven_spreads_remainder(self):
        plan = PartitionPlan.contiguous(7, 3)
        assert plan.owner == (0, 0, 0, 1, 1, 2, 2)
        assert plan.nodes_of(0) == [0, 1, 2]
        assert plan.nodes_of(2) == [5, 6]

    def test_single(self):
        plan = PartitionPlan.single(4)
        assert plan.num_parts == 1
        assert plan.nodes_of(0) == [0, 1, 2, 3]

    def test_rank_of(self):
        plan = PartitionPlan.contiguous(4, 2)
        assert [plan.rank_of(n) for n in range(4)] == [0, 0, 1, 1]

    def test_sparse_ranks_rejected(self):
        with pytest.raises(PartitionError, match="dense"):
            PartitionPlan(owner=(0, 2))

    def test_empty_plan_rejected(self):
        with pytest.raises(PartitionError, match="empty"):
            PartitionPlan(owner=())

    def test_more_parts_than_nodes_rejected(self):
        with pytest.raises(PartitionError):
            PartitionPlan.contiguous(2, 3)


class TestWindowPrimitives:
    def test_peek_next_event_time(self):
        sim = Simulator()
        assert sim.peek_next_event_time() == float("inf")
        sim.call_later(5.0, lambda: None)
        assert sim.peek_next_event_time() == 5.0

    def test_run_window_stops_strictly_below_bound(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.call_later(t, lambda t=t: fired.append(t))
        sim.run_window(3.0)
        assert fired == [1.0, 2.0]
        # The clock parks at the last processed event; only the runner's
        # stop command advances it to the agreed final time.
        assert sim.now == 2.0
        assert sim.peek_next_event_time() == 3.0
        sim.run_window(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_run_window_processes_daemons(self):
        """Daemon events inside the window run even with no real work."""
        sim = Simulator()
        fired = []
        sim.call_later(1.0, lambda: fired.append("d"), daemon=True)
        sim.run_window(2.0)
        assert fired == ["d"]


class TestTypedErrors:
    def test_zero_link_latency_raises_typed_error(self):
        config = FabricConfig(flow_control="paired", link_latency_ns=0.0)
        with pytest.raises(ZeroLookaheadError):
            Cluster(config=ClusterConfig(num_nodes=2, fabric=config),
                    partition=PartitionPlan.contiguous(2, 2))

    def test_zero_credit_return_raises_typed_error(self):
        config = FabricConfig(flow_control="paired", credit_return_ns=0.0)
        with pytest.raises(ZeroLookaheadError):
            Cluster(config=ClusterConfig(num_nodes=2, fabric=config),
                    partition=PartitionPlan.contiguous(2, 2))

    def test_zero_lookahead_is_a_partition_error(self):
        assert issubclass(ZeroLookaheadError, PartitionError)

    def test_unowned_node_access_raises(self):
        cluster = Cluster(
            config=ClusterConfig(
                num_nodes=4, fabric=FabricConfig(flow_control="paired")),
            partition=PartitionPlan.contiguous(4, 2), rank=0)
        assert 0 in cluster.nodes and 1 in cluster.nodes
        assert len(cluster.nodes) == 2
        with pytest.raises(PartitionError):
            cluster.nodes[2]

    def test_plan_size_mismatch_raises(self):
        with pytest.raises(PartitionError, match="plan covers"):
            Cluster(config=ClusterConfig(
                num_nodes=4, fabric=FabricConfig(flow_control="paired")),
                partition=PartitionPlan.contiguous(2, 2))

    def test_membership_on_partitioned_cluster_is_scheduled(self):
        """A partitioned rank cannot run the RPING probing mesh (it
        only simulates its own nodes), so enable_membership returns the
        deterministic fault-controller-driven ScheduledMembership."""
        from repro.cluster.membership import ScheduledMembership

        cluster = Cluster(
            config=ClusterConfig(
                num_nodes=2, fabric=FabricConfig(flow_control="paired")),
            partition=PartitionPlan.contiguous(2, 2), rank=0)
        service = cluster.enable_membership()
        assert isinstance(service, ScheduledMembership)

    def test_shared_injector_rejected_on_partitioned_fabric(self):
        cluster = Cluster(
            config=ClusterConfig(
                num_nodes=2, fabric=FabricConfig(flow_control="paired")),
            partition=PartitionPlan.contiguous(2, 2), rank=0)
        with pytest.raises(PartitionError, match="per_link_streams"):
            cluster.fabric.install_fault_injector(FaultInjector(seed=1))
        cluster.fabric.install_fault_injector(
            FaultInjector(seed=1, per_link_streams=True))

    def test_past_arrival_injection_raises(self):
        cluster = Cluster(
            config=ClusterConfig(
                num_nodes=2, fabric=FabricConfig(flow_control="paired")),
            partition=PartitionPlan.contiguous(2, 2), rank=0)
        cluster.sim.call_later(100.0, lambda: None)
        cluster.sim.run()
        message = RemoteMessage(arrival=50.0, dst_rank=0,
                                key=(0, 1, 0, 0, 0), kind=MSG_FRAME,
                                payload=(None, None))
        with pytest.raises(PartitionError, match="window protocol"):
            cluster.fabric.inject_messages([message])

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            run_partitioned(lambda r, p: None, PartitionPlan.single(1),
                            transport="threads")


class TestInstantStager:
    def test_simultaneous_entries_run_in_canonical_key_order(self):
        """Simultaneous timestamps at a partition boundary: entries
        staged in arbitrary order at one instant execute sorted by the
        canonical key — the serial engine's delivery order survives the
        cut no matter which partition staged which entry first."""
        sim = Simulator()
        stager = _InstantStager(sim)
        order = []

        def stage_all():
            # Staged deliberately out of key order.
            stager.stage((2, 0, 0, 7, 0), lambda: order.append("c"))
            stager.stage((0, 1, 0, 3, 0), lambda: order.append("a"))
            stager.stage((1, 0, 2, 3, 0), lambda: order.append("b"))

        sim.call_later(10.0, stage_all)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_drain_waits_for_other_events_at_instant(self):
        """The stager runs after every other event at the instant, so a
        frame staged at t cannot overtake compute still scheduled at t."""
        sim = Simulator()
        stager = _InstantStager(sim)
        order = []
        sim.call_later(5.0, lambda: stager.stage((0,),
                                                 lambda: order.append("s")))
        sim.call_later(5.0, lambda: order.append("e1"))
        sim.call_later(5.0, lambda: order.append("e2"))
        sim.run()
        assert order == ["e1", "e2", "s"]


def _build_cluster_workload(num_nodes, rounds):
    """Builder for a small all-to-all read workload (returns the runner
    ``build`` callable); every node reads from every peer then idles an
    asymmetric amount, exercising cross-partition frames and credits."""

    def build(rank, plan):
        config = ClusterConfig(
            num_nodes=num_nodes,
            fabric=FabricConfig(flow_control="paired"))
        cluster = Cluster(config=config, partition=plan, rank=rank)
        gctx = cluster.create_global_context(1, 1 << 20)
        sim = cluster.sim
        log = []

        def app(n):
            session = RMCSession(cluster.nodes[n].core, gctx.qp(n),
                                 gctx.entry(n))
            lbuf = session.alloc_buffer(4096)
            for rnd in range(rounds):
                for peer in range(num_nodes):
                    if peer == n:
                        continue
                    yield from session.read_sync(peer, 64 * n, lbuf, 256)
                    log.append((n, rnd, peer, sim.now))
                yield sim.timeout(100.0 * (n + 1))

        for n in plan.nodes_of(rank):
            sim.process(app(n), name=f"app{n}")

        def finalize():
            return {"snap": snapshot(cluster), "log": log}

        return sim, cluster.fabric, finalize

    return build


class TestTransportEquality:
    NODES = 4
    ROUNDS = 3

    def _merged(self, workers, transport):
        plan = PartitionPlan.contiguous(self.NODES, workers)
        build = _build_cluster_workload(self.NODES, self.ROUNDS)
        run = run_partitioned(build, plan, transport=transport)
        parts = [run.results[r] for r in sorted(run.results)]
        snap = merge_snapshots([p["snap"] for p in parts])
        log = sorted(sum((p["log"] for p in parts), []))
        return run, snap, log

    @pytest.fixture(scope="class")
    def serial(self):
        return self._merged(1, "inline")

    @pytest.mark.parametrize("workers", [2, 4])
    def test_inline_matches_serial(self, serial, workers):
        base_run, base_snap, base_log = serial
        run, snap, log = self._merged(workers, "inline")
        assert log == base_log
        assert snap.nodes == base_snap.nodes
        assert snap.fabric_stats == base_snap.fabric_stats
        assert snap.time_ns == base_snap.time_ns
        assert run.final_time == base_run.final_time
        assert run.rounds > 0

    def test_process_matches_serial(self, serial):
        _base_run, base_snap, base_log = serial
        _run, snap, log = self._merged(2, "process")
        assert log == base_log
        assert snap.nodes == base_snap.nodes
        assert snap.fabric_stats == base_snap.fabric_stats

    def test_engine_stats_aggregate_partitions(self):
        run, _snap, _log = self._merged(2, "inline")
        stats = run.engine_stats()
        assert len(stats["partitions"]) == 2
        assert stats["total_events_processed"] == sum(
            p["events_processed"] for p in stats["partitions"])
        assert stats["total_events_processed"] > 0
        assert stats["rounds"] == run.rounds

    def test_until_bound_respected(self):
        plan = PartitionPlan.contiguous(self.NODES, 2)
        build = _build_cluster_workload(self.NODES, self.ROUNDS)
        run = run_partitioned(build, plan, until=500.0,
                              transport="inline")
        assert run.final_time == 500.0
