"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AnyOf, Simulator, SimulationError, WakeSignal


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)
        yield sim.timeout(5.5)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == pytest.approx(15.5)
    assert sim.now == pytest.approx(15.5)


def test_bare_number_yield_is_a_timeout():
    sim = Simulator()

    def proc(sim):
        yield 42
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == pytest.approx(42.0)


def test_process_return_value_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3)
        return "payload"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "payload"


def test_waiting_on_already_completed_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        return 7

    def parent(sim, child_proc):
        yield sim.timeout(10)  # child completes long before we wait
        value = yield child_proc
        return value

    child_proc = sim.process(child(sim))
    p = sim.process(parent(sim, child_proc))
    sim.run()
    assert p.value == 7
    assert sim.now == pytest.approx(10.0)


def test_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_surfaces_from_run():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.process(child(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_events_fire_in_fifo_order_at_equal_times():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in range(4):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_run_until_limits_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100)

    sim.process(proc(sim))
    sim.run(until=50)
    assert sim.now == pytest.approx(50.0)
    sim.run()
    assert sim.now == pytest.approx(100.0)


def test_manual_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter(sim):
        value = yield gate
        log.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(20)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert log == [(20.0, "open")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc(sim):
        first = yield AnyOf(sim, [sim.timeout(5, "fast"), sim.timeout(50, "slow")])
        return first

    p = sim.process(proc(sim))
    sim.run()
    assert "fast" in p.value.values()
    # The slow timeout still exists but the process resumed at t=5.


def test_all_of_waits_for_everything():
    sim = Simulator()

    def proc(sim):
        results = yield sim.all_of([sim.timeout(5, "a"), sim.timeout(9, "b")])
        return sim.now, results

    p = sim.process(proc(sim))
    sim.run()
    at, results = p.value
    assert at == pytest.approx(9.0)
    assert set(results.values()) == {"a", "b"}


def test_run_until_process_detects_deadlock():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered

    p = sim.process(stuck(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_process(p)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_stop_halts_run():
    sim = Simulator()

    def proc(sim):
        for _ in range(100):
            yield sim.timeout(1)
            if sim.now >= 5:
                sim.stop()

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(5.0)


# -- satellite regressions: tracebacks, daemon accounting, latches -------


def test_process_exception_carries_traceback():
    """The frames that raised inside the process survive to the caller
    of run_until_process (regression for a dropped-traceback no-op)."""
    import traceback

    sim = Simulator()

    def deep_helper():
        raise ValueError("boom with context")

    def proc(sim):
        yield sim.timeout(1)
        deep_helper()

    p = sim.process(proc(sim))
    with pytest.raises(ValueError, match="boom with context") as excinfo:
        sim.run_until_process(p)
    frames = [f.name for f in
              traceback.extract_tb(excinfo.value.__traceback__)]
    assert "deep_helper" in frames
    assert "proc" in frames


def test_run_until_process_stops_on_daemon_only_heap():
    """A watchdog-only heap can never complete the target process:
    run_until_process must deadlock-error, not spin the timers forever."""
    sim = Simulator()

    def watchdog(sim):
        while True:
            yield sim.timeout(10, daemon=True)

    def stuck(sim):
        yield sim.event()  # never triggered

    sim.process(watchdog(sim))
    p = sim.process(stuck(sim))
    with pytest.raises(SimulationError, match="daemon"):
        sim.run_until_process(p)


def test_wake_signal_trigger_before_wait_is_latched():
    sim = Simulator()
    signal = WakeSignal(sim)
    signal.trigger()  # nobody waiting: must latch
    log = []

    def waiter(sim):
        yield signal.wait()
        log.append(sim.now)

    sim.process(waiter(sim))
    sim.run()
    assert log == [0.0]


def test_wake_signal_double_trigger_coalesces():
    """Two triggers with no waiter latch a single wake: the second
    wait() has nothing to consume and deadlocks."""
    sim = Simulator()
    signal = WakeSignal(sim)
    signal.trigger()
    signal.trigger()

    def waiter(sim):
        yield signal.wait()  # consumes the (single) latched wake
        yield signal.wait()  # never fires

    p = sim.process(waiter(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_process(p)


def test_wake_signal_rewait_after_fire():
    sim = Simulator()
    signal = WakeSignal(sim)
    wakes = []

    def waiter(sim):
        yield signal.wait()
        wakes.append(sim.now)
        yield signal.wait()
        wakes.append(sim.now)

    def producer(sim):
        yield sim.timeout(5)
        signal.trigger()
        yield sim.timeout(10)
        signal.trigger()

    sim.process(waiter(sim))
    sim.process(producer(sim))
    sim.run()
    assert wakes == [5.0, 15.0]


def test_any_of_with_already_processed_event():
    sim = Simulator()

    def proc(sim):
        early = sim.timeout(1, "early")
        yield sim.timeout(5)  # `early` fires and is fully processed
        result = yield AnyOf(sim, [early, sim.timeout(50, "late")])
        return sim.now, result

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (5.0, {0: "early"})


def test_all_of_with_already_processed_events():
    sim = Simulator()

    def proc(sim):
        a = sim.timeout(1, "a")
        b = sim.timeout(2, "b")
        yield sim.timeout(5)  # both children already processed
        results = yield sim.all_of([a, b])
        return sim.now, results

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (5.0, {0: "a", 1: "b"})


def test_call_later_runs_deferred_callback():
    sim = Simulator()
    fired = []

    sim.call_later(7.5, lambda: fired.append(sim.now))
    sim.call_later(0.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0.0, 7.5]


def test_call_later_daemon_does_not_sustain_run():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(3)

    sim.call_later(100.0, lambda: fired.append(sim.now), daemon=True)
    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(3.0)
    assert fired == []
