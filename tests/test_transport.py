"""Unit tests for the transport stack's building blocks.

Health state machine (EWMAs, consecutive-loss hysteresis, flap
quarantine), failover policies as pure selection functions, the
analytical model transports' degradation knobs, and the functional
:class:`MemoryStore` mirror. Everything here is deterministic — no
cluster, no chaos; the end-to-end story lives in
``test_transport_failover.py``.
"""

import pytest

from repro.sim import Simulator
from repro.transport import (
    ChannelState,
    DegradationTimeline,
    FailFastPolicy,
    HealthChecker,
    HealthConfig,
    HedgedProbePolicy,
    HysteresisPolicy,
    MemoryStore,
    build_transport,
    parse_policy,
)
from repro.transport.health import staggered


class _FakeSim:
    """Just a clock: the checker only reads ``now`` outside start()."""

    def __init__(self):
        self.now = 0.0


class _FakeTransport:
    name = "fake"


def _checker(**overrides):
    sim = _FakeSim()
    timeline = DegradationTimeline()
    config = HealthConfig(**overrides) if overrides else HealthConfig()
    checker = HealthChecker(sim, _FakeTransport(), config=config,
                            timeline=timeline)
    return sim, timeline, checker


class TestHealthChecker:
    def test_down_needs_consecutive_losses(self):
        _, _, hc = _checker(down_after=3, ewma_alpha=0.01)
        hc.observe(False, None)
        hc.observe(True, None)          # streak broken
        hc.observe(False, None)
        hc.observe(False, None)
        assert hc.state is ChannelState.HEALTHY
        hc.observe(False, None)         # third in a row
        assert hc.state is ChannelState.DOWN
        assert not hc.usable

    def test_recovery_needs_consecutive_oks(self):
        _, timeline, hc = _checker(down_after=1, up_after=2,
                                   quarantine_ns=0.0)
        hc.observe(False, None)
        assert hc.state is ChannelState.DOWN
        hc.observe(True, None)
        assert hc.state is ChannelState.DOWN    # one ok is not enough
        hc.observe(True, None)
        assert hc.state is ChannelState.HEALTHY
        kinds = [(e["frm"], e["to"]) for e in timeline.as_list()]
        assert kinds == [("healthy", "down"), ("down", "healthy")]

    def test_loss_ewma_degrades_before_down(self):
        _, _, hc = _checker(down_after=10, loss_degraded=0.25,
                            ewma_alpha=0.3)
        hc.observe(False, None)
        hc.observe(True, None)
        hc.observe(False, None)         # ewma ~ 0.447 > 0.25
        assert hc.state is ChannelState.DEGRADED
        assert hc.usable                # degraded still routes

    def test_rtt_inflation_degrades(self):
        _, _, hc = _checker(rtt_degraded_factor=2.0, ewma_alpha=1.0)
        hc.observe(True, 100.0)         # baseline
        assert hc.state is ChannelState.HEALTHY
        hc.observe(True, 500.0)         # 5x baseline
        assert hc.state is ChannelState.DEGRADED
        hc.observe(True, 100.0)
        assert hc.state is ChannelState.HEALTHY

    def test_flap_quarantine_refuses_early_recovery(self):
        sim, _, hc = _checker(down_after=1, up_after=1,
                              flap_threshold=2, flap_window_ns=1_000.0,
                              quarantine_ns=500.0)
        hc.observe(False, None)         # down #1
        hc.observe(True, None)          # instant recovery
        assert hc.state is ChannelState.HEALTHY
        sim.now = 100.0
        hc.observe(False, None)         # down #2 inside the window: flap
        assert hc.flaps_detected == 1
        hc.observe(True, None)          # quarantined: stays DOWN
        assert hc.state is ChannelState.DOWN
        sim.now = 700.0                 # quarantine expired
        hc.observe(True, None)
        assert hc.state is ChannelState.HEALTHY

    def test_on_change_fires_every_observation(self):
        calls = []
        _, _, hc = _checker()
        hc.on_change = lambda: calls.append(hc.state)
        hc.observe(True, 10.0)
        hc.observe(True, 10.0)
        assert len(calls) == 2          # not just on transitions

    def test_staggered_phases_are_distinct(self):
        config = HealthConfig(probe_interval_ns=3_000.0)
        phases = {staggered(config, i, 4).probe_phase_ns
                  for i in range(4)}
        assert len(phases) == 4
        assert staggered(config, 0, 1) is config

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(probe_interval_ns=0)
        with pytest.raises(ValueError):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            HealthConfig(down_after=0)


class _Chan:
    """Minimal health view for the pure-policy tests."""

    def __init__(self, state=ChannelState.HEALTHY, healthy_since=0.0,
                 rtt=None):
        self.state = state
        self.healthy_since = healthy_since
        self.rtt_ewma = rtt

    @property
    def usable(self):
        return self.state is not ChannelState.DOWN


class TestPolicies:
    def test_fail_fast_always_takes_best_usable(self):
        policy = FailFastPolicy()
        chans = [_Chan(ChannelState.DOWN), _Chan(), _Chan()]
        assert policy.select(0.0, chans, 0) == 1
        chans[0].state = ChannelState.HEALTHY
        assert policy.select(0.0, chans, 1) == 0    # instant failback

    def test_fail_fast_sticks_when_nothing_usable(self):
        policy = FailFastPolicy()
        chans = [_Chan(ChannelState.DOWN), _Chan(ChannelState.DOWN)]
        assert policy.select(0.0, chans, 1) == 1

    def test_hysteresis_fails_over_only_when_down(self):
        policy = HysteresisPolicy(hold_ns=1_000.0)
        chans = [_Chan(ChannelState.DEGRADED), _Chan()]
        assert policy.select(0.0, chans, 0) == 0    # degraded: stay
        chans[0].state = ChannelState.DOWN
        assert policy.select(0.0, chans, 0) == 1

    def test_hysteresis_failback_waits_out_the_hold(self):
        policy = HysteresisPolicy(hold_ns=1_000.0)
        chans = [_Chan(healthy_since=500.0), _Chan()]
        assert policy.select(600.0, chans, 1) == 1  # 100 ns healthy
        assert policy.select(1_500.0, chans, 1) == 0

    def test_hedged_switches_on_proven_faster_probe(self):
        policy = HedgedProbePolicy(hold_ns=1_000.0, hedge_factor=0.8)
        chans = [_Chan(ChannelState.DEGRADED, rtt=1_000.0),
                 _Chan(rtt=700.0), _Chan(rtt=900.0)]
        assert policy.select(0.0, chans, 0) == 1    # 700 < 0.8 * 1000
        chans[1].rtt_ewma = 850.0
        assert policy.select(0.0, chans, 0) == 0    # hedge not proven

    def test_parse_policy(self):
        assert isinstance(parse_policy("fail-fast"), FailFastPolicy)
        assert isinstance(parse_policy("hysteresis"), HysteresisPolicy)
        assert isinstance(parse_policy("hedged"), HedgedProbePolicy)
        policy = HysteresisPolicy(hold_ns=5.0)
        assert parse_policy(policy) is policy
        with pytest.raises(ValueError):
            parse_policy("carrier-pigeon")


class TestModelTransports:
    def _run(self, coro, sim):
        out = {}

        def wrap():
            out["value"] = yield from coro
        sim.process(wrap())
        sim.run()
        return out.get("value")

    def test_down_knob_times_out_every_op(self):
        from repro.runtime.qp_api import RemoteOpFailed

        sim = Simulator()
        transport = build_transport("rdma", sim, MemoryStore(), seed=0)
        transport.down = True
        failed = {}

        def attempt():
            try:
                yield from transport.read(1, 0, 8)
            except RemoteOpFailed as exc:
                failed["error"] = exc.error
        sim.process(attempt())
        sim.run()
        assert failed["error"] == "rdma_timeout"
        assert sim.now == transport.down_timeout_ns
        assert transport.ops_failed == 1

    def test_loss_prob_is_seed_deterministic(self):
        def losses(seed):
            sim = Simulator()
            transport = build_transport("tcp", sim, MemoryStore(),
                                        seed=seed)
            transport.loss_prob = 0.3
            fates = []

            def run():
                from repro.runtime.qp_api import RemoteOpFailed
                for _ in range(40):
                    try:
                        yield from transport.read(1, 0, 8)
                        fates.append(True)
                    except RemoteOpFailed:
                        fates.append(False)
            sim.process(run())
            sim.run()
            return fates

        assert losses(7) == losses(7)
        assert losses(7) != losses(8)

    def test_probe_returns_elapsed_rtt(self):
        sim = Simulator()
        transport = build_transport("rdma", sim, MemoryStore(), seed=0,
                                    jitter_frac=0.0)
        rtt = self._run(transport.probe(1), sim)
        assert rtt == transport.rtt_ns(transport.probe_bytes, "read")
        assert transport.probes == 1

    def test_write_then_read_round_trips_through_store(self):
        sim = Simulator()
        store = MemoryStore()
        transport = build_transport("shm", sim, store, seed=0)

        def run():
            yield from transport.write(2, 64, b"\xabcd-mirror")
            return (yield from transport.read(2, 64, 10))
        assert self._run(run(), sim) == b"\xabcd-mirror"

    def test_baseline_rtts_keep_the_paper_ordering(self):
        sim = Simulator()
        store = MemoryStore()
        named = {name: build_transport(name, sim, store, seed=0)
                 for name in ("rdma", "tcp", "shm")}
        rtts = {name: t.rtt_ns(64, "read") for name, t in named.items()}
        assert rtts["shm"] < rtts["rdma"] < rtts["tcp"]

    def test_build_transport_rejects_bad_specs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_transport("sonuma", sim, MemoryStore())
        with pytest.raises(ValueError):
            build_transport("avian", sim, MemoryStore())


class TestMemoryStore:
    def test_segments_grow_zero_filled(self):
        store = MemoryStore()
        assert store.read(3, 100, 8) == bytes(8)
        store.write(3, 104, b"\x01\x02")
        assert store.read(3, 100, 8) == bytes(4) + b"\x01\x02" + bytes(2)

    def test_nodes_are_isolated(self):
        store = MemoryStore()
        store.write(1, 0, b"one")
        assert store.read(2, 0, 3) == bytes(3)
