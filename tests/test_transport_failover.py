"""End-to-end failover chaos: the multi-transport session under fire.

Drives :func:`repro.transport.harness.run_failover` — a windowed
read/write workload over a :class:`FailoverSession` while the primary
fabric flaps (every client link severed and restored on a schedule) or
a peer is crashed outright. The acceptance bars from the issue:

* **exactly-once**: every issued op completes exactly once across
  backend switches — no losses, no duplicates, replays reconciled
  against the op log;
* **zero lost writes**: remote segments and the local mirror both
  converge to the fault-free expected digests;
* **bit-reproducible**: the whole outcome — timeline included — is
  identical run to run and across 1/2/4 conservative-DES workers;
* the membership veto keeps fabric transports away from an evicted
  peer while the local mirror keeps its reads answerable (degraded).
"""

import pytest

from repro.transport.harness import run_failover

FAST = dict(num_ops=120, flap_cycles=1, flap_start_ns=10_000.0,
            flap_down_ns=15_000.0)


def _outcome(**kwargs):
    merged = dict(FAST)
    merged.update(kwargs)
    return run_failover(**merged)["outcome"]


class TestFlapSurvival:
    def test_exactly_once_across_backend_switches(self, chaos_seed):
        out = _outcome(seed=chaos_seed(7))
        eo = out["exactly_once"]
        assert eo["issued"] == eo["completed"] == eo["distinct"] == 120
        assert eo["duplicates"] == 0
        assert eo["lost"] == 0
        # Replays happened (the flap error-completed in-flight writes)
        # and every one reconciled against the op log.
        assert out["oplog"]["pending"] == 0
        assert out["stack"]["counters"]["failovers"] >= 1
        assert out["stack"]["counters"]["failbacks"] >= 1

    def test_zero_lost_writes_segments_and_mirror_converge(self,
                                                           chaos_seed):
        out = _outcome(seed=chaos_seed(7))
        assert out["wrong"] == 0
        assert out["reads_checked"] > 0
        assert out["segments"] == out["expected"]
        assert out["mirror"] == out["expected"]

    def test_availability_held_through_the_outage(self, chaos_seed):
        out = _outcome(seed=chaos_seed(7))
        assert out["availability"] >= 0.99
        by = out["by_status"]
        assert by.get("failed", 0) == 0

    def test_timeline_tells_the_failover_story(self, chaos_seed):
        out = _outcome(seed=chaos_seed(7))
        kinds = [e["kind"] for e in out["timeline"]]
        assert "state" in kinds and "switch" in kinds
        switches = [e for e in out["timeline"] if e["kind"] == "switch"]
        assert switches[0]["to"] != "sonuma"        # away from primary
        assert switches[-1]["to"] == "sonuma"       # and back home
        times = [e["t_ns"] for e in out["timeline"]]
        assert times == sorted(times)


class TestPolicyTemperament:
    def test_fail_fast_switches_at_least_as_often(self, chaos_seed):
        seed = chaos_seed(7)
        eager = _outcome(seed=seed, policy="fail-fast", flap_cycles=2)
        calm = _outcome(seed=seed, policy="hysteresis", flap_cycles=2)
        eager_n = eager["stack"]["counters"]["failovers"]
        calm_n = calm["stack"]["counters"]["failovers"]
        assert eager_n >= calm_n >= 1
        for out in (eager, calm):
            assert out["exactly_once"]["lost"] == 0
            assert out["segments"] == out["expected"]


class TestDeterminism:
    def test_same_seed_same_outcome(self, chaos_seed):
        seed = chaos_seed(11)
        assert _outcome(seed=seed) == _outcome(seed=seed)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_invariance(self, workers, chaos_seed):
        seed = chaos_seed(7)
        serial = _outcome(seed=seed)
        parallel = _outcome(seed=seed, workers=workers)
        # The whole outcome — digests, counters, every timeline event
        # and its timestamp — must be bit-identical across partitions.
        assert parallel == serial


class TestMembershipVeto:
    def test_evicted_peer_served_from_the_mirror(self, chaos_seed):
        out = _outcome(seed=chaos_seed(7), flap_cycles=0,
                       crash_node=2, crash_at_ns=8_000.0)
        assert out["membership"]["evictions"] == 1
        counters = out["stack"]["counters"]
        assert counters["vetoes"] >= 1
        # Ops on the dead peer complete degraded off the local mirror;
        # nothing is lost and nothing fails outright.
        eo = out["exactly_once"]
        assert eo["lost"] == 0 and eo["duplicates"] == 0
        assert out["by_status"].get("degraded", 0) > 0
        assert out["by_status"].get("failed", 0) == 0
        # The mirror holds the full fault-free state for every peer;
        # the survivors' real segments match it too.
        assert out["mirror"] == out["expected"]
        for nid, digest in out["segments"].items():
            if nid != 2:
                assert digest == out["expected"][nid]
