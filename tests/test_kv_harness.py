"""Partitioned replicated/coded KV failover harness: parity goldens.

``run_kv_failover`` drives the replicated (or erasure-coded) KV cluster
with a client, a primary, and backups pinned to fixed node ids, so the
same scenario can be cut across 1..N worker processes. The *outcome*
dict (final values, availability stats, membership events) must be
identical whatever the worker count or transport; only the ``perf``
side (wall clock) may differ.
"""

from __future__ import annotations

import pytest

from repro.apps import run_kv_failover

CRASH_AT = 30_000.0
RESTART_AFTER = 20_000.0

REPLICATED_CONFIGS = [(1, "inline"), (2, "inline"), (2, "shm"),
                      (3, "process")]


def _run(mode, num_nodes, workers, transport, crash=False,
         restart=True):
    # A restarted primary rejoins with empty memory, so the coded
    # scenario keeps it down (fail-stop): every read after the crash —
    # including the final readback — must reconstruct from parity.
    return run_kv_failover(
        num_nodes=num_nodes, workers=workers, transport=transport,
        mode=mode,
        crash_primary_at_ns=CRASH_AT if crash else None,
        restart_after_ns=RESTART_AFTER if crash and restart else None)


class TestReplicatedParity:
    @pytest.fixture(scope="class")
    def serial(self):
        return _run("replicated", 3, 1, "inline", crash=True)

    def test_scenario_is_meaningful(self, serial):
        out = serial["outcome"]
        assert out["values_ok"]
        assert out["availability"]["failovers"] >= 1
        assert out["membership"]["evictions"] >= 1

    @pytest.mark.parametrize("workers,transport", REPLICATED_CONFIGS[1:])
    def test_outcome_partition_invariant(self, serial, workers,
                                         transport):
        got = _run("replicated", 3, workers, transport, crash=True)
        assert got["outcome"] == serial["outcome"]
        assert got["perf"]["workers"] == workers

    def test_fault_free_all_gets_on_primary(self):
        out = _run("replicated", 3, 2, "inline")["outcome"]
        assert out["values_ok"]
        assert out["availability"]["failovers"] == 0
        assert out["membership"]["evictions"] == 0


class TestCodedParity:
    @pytest.fixture(scope="class")
    def serial(self):
        return _run("coded", 4, 1, "inline", crash=True, restart=False)

    def test_degraded_reads_reconstruct(self, serial):
        out = serial["outcome"]
        assert out["values_ok"]
        assert out["availability"]["degraded_reads"] >= 1

    @pytest.mark.parametrize("workers,transport",
                             [(2, "inline"), (2, "shm"), (4, "process")])
    def test_outcome_partition_invariant(self, serial, workers,
                                         transport):
        got = _run("coded", 4, workers, transport, crash=True,
                   restart=False)
        assert got["outcome"] == serial["outcome"]
