"""Shared pytest plumbing for the chaos/fault-injection suites.

Chaos tests are seeded, so every run is reproducible — but only if the
seed that failed is easy to recover and re-pin. This conftest adds:

* ``--chaos-seed=N``: overrides the seed of every test that draws one
  through the :func:`chaos_seed` fixture, so a failure found by the
  nightly seed matrix (or any ad-hoc sweep) can be replayed locally
  with a single flag;
* a report hook that, when such a test fails, prints the exact
  ``--chaos-seed`` invocation needed to reproduce it.

Tests that don't opt into the fixture keep their hard-coded seeds and
are unaffected.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed", type=int, default=None, metavar="N",
        help="override the fault-injection seed of every test using the "
             "chaos_seed fixture (default: each test's built-in seed)")


@pytest.fixture
def chaos_seed(request):
    """Returns ``pick(default)``: the test's built-in seed, unless the
    run was launched with ``--chaos-seed=N``, in which case N wins.

    The chosen value is remembered on the test item so the failure
    report can tell the user how to reproduce.
    """
    override = request.config.getoption("--chaos-seed")
    used = {}
    request.node._chaos_seed_used = used

    def pick(default):
        seed = override if override is not None else default
        used["seed"] = seed
        return seed

    return pick


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    used = getattr(item, "_chaos_seed_used", None)
    if (report.when == "call" and report.failed
            and used is not None and "seed" in used):
        report.sections.append((
            "chaos seed",
            f"reproduce with: pytest {item.nodeid} "
            f"--chaos-seed={used['seed']}"))
