"""Regression tests for access-library completion bookkeeping."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import Barrier, RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 64 * PAGE_SIZE


def build(num_nodes=2, qp_size=4):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    gctx = cluster.create_global_context(CTX, SEG, qp_size=qp_size)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(num_nodes)}
    return cluster, sessions


class TestStaleCompletions:
    def test_fire_and_forget_does_not_satisfy_later_sync_wait(self):
        """Regression: fire-and-forget async completions must never be
        stored where a later synchronous wait (with a recycled WQ index)
        would consume them and return before its own data arrived.

        A tiny QP forces rapid index reuse; the sync read after the
        async burst must observe the freshly written remote data.
        """
        cluster, sessions = build(qp_size=2)
        session = sessions[0]
        lbuf = session.alloc_buffer(8192)
        session.buffer_poke(lbuf, b"\xAA" * 64)

        def app(sim):
            # Fire-and-forget writes with no callbacks, fully drained.
            for i in range(6):
                yield from session.wait_for_slot()
                yield from session.write_async(1, i * 64, lbuf, 64)
            yield from session.drain_cq()
            # Now place fresh data remotely and read it back
            # synchronously, recycling the same WQ indexes.
            cluster.poke_segment(1, CTX, 4096, b"fresh!" + bytes(58))
            yield from session.read_sync(1, 4096, lbuf + 4096, 64)
            return session.buffer_peek(lbuf + 4096, 6)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == b"fresh!"

    def test_barrier_then_sync_reads_return_current_data(self):
        """Regression for the BFS corruption: barrier broadcasts (async
        writes without callbacks) interleaved with sync reads on the
        same session must not poison the reads."""
        cluster, sessions = build(num_nodes=3, qp_size=4)
        barriers = {n: Barrier(sessions[n], n, [0, 1, 2])
                    for n in range(3)}
        observed = []

        def worker(sim, node_id):
            session = sessions[node_id]
            lbuf = session.alloc_buffer(4096)
            peer = (node_id + 1) % 3
            for round_number in range(5):
                # Publish round-stamped data in my segment.
                stamp = bytes([round_number, node_id]) * 32
                cluster.poke_segment(node_id, CTX, 0, stamp)
                yield from barriers[node_id].wait()
                # Read the peer's stamp; it must be this round's.
                yield from session.read_sync(peer, 0, lbuf, 64)
                got = session.buffer_peek(lbuf, 2)
                observed.append((round_number, peer, got))
                yield from barriers[node_id].wait()

        for n in range(3):
            cluster.sim.process(worker(cluster.sim, n))
        cluster.run()
        assert len(observed) == 15
        for round_number, peer, got in observed:
            assert got == bytes([round_number, peer]), \
                f"round {round_number} read stale data {got!r}"

    def test_mixed_async_callbacks_and_sync_ops(self):
        """Async ops with callbacks and sync ops interleaved on one
        session: each completion goes to exactly its own consumer."""
        cluster, sessions = build(qp_size=4)
        session = sessions[0]
        for i in range(8):
            cluster.poke_segment(1, CTX, i * 64, bytes([i]) * 64)
        lbuf = session.alloc_buffer(8192)
        callback_hits = []

        def app(sim):
            sync_results = []
            for i in range(8):
                if i % 2 == 0:
                    yield from session.wait_for_slot()
                    yield from session.read_async(
                        1, i * 64, lbuf + i * 64, 64,
                        callback=lambda cq: callback_hits.append(
                            cq.wq_index))
                else:
                    yield from session.read_sync(1, i * 64,
                                                 lbuf + i * 64, 64)
                    sync_results.append(
                        session.buffer_peek(lbuf + i * 64, 1)[0])
            yield from session.drain_cq()
            return sync_results

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == [1, 3, 5, 7]
        assert len(callback_hits) == 4
        data = session.buffer_peek(lbuf, 8 * 64)
        for i in range(8):
            assert data[i * 64] == i
