"""Determinism guarantees: identical runs produce identical results.

The simulation kernel breaks timestamp ties FIFO and every stochastic
input is seeded, so any experiment is exactly repeatable — the property
that makes the EXPERIMENTS.md numbers reproducible and regressions
bisectable.
"""

import subprocess
import sys

from repro.workloads import remote_read_latency, send_recv_latency


class TestDeterminism:
    def test_read_latency_is_bit_identical_across_runs(self):
        first = remote_read_latency(sizes=(64, 1024), iterations=6)
        second = remote_read_latency(sizes=(64, 1024), iterations=6)
        for a, b in zip(first, second):
            assert a.mean_ns == b.mean_ns
            assert a.p99_ns == b.p99_ns

    def test_messaging_latency_is_bit_identical(self):
        first = send_recv_latency(sizes=(64,), threshold=256, rounds=4)
        second = send_recv_latency(sizes=(64,), threshold=256, rounds=4)
        assert first[0].latency_us == second[0].latency_us

    def test_pagerank_is_bit_identical(self):
        from repro.apps import run_sonuma_bulk, zipf_graph

        graph = zipf_graph(96, avg_degree=4, seed=3)
        first = run_sonuma_bulk(graph, 2)
        second = run_sonuma_bulk(graph, 2)
        assert first.elapsed_ns == second.elapsed_ns
        assert first.ranks == second.ranks

    def test_fault_injection_is_bit_identical(self):
        """Same seed + same policy => the exact same fault pattern:
        identical injector stats, reliability counters, and end time."""
        from repro import telemetry
        from repro.cluster import Cluster, ClusterConfig
        from repro.fabric import FaultInjector, FaultPolicy
        from repro.node import NodeConfig
        from repro.rmc import RMCConfig
        from repro.runtime import RMCSession
        from repro.vm import PAGE_SIZE

        def chaotic_run():
            cluster = Cluster(config=ClusterConfig(
                num_nodes=2,
                node=NodeConfig(rmc=RMCConfig(
                    retransmit_timeout_ns=4000.0))))
            injector = cluster.fabric.install_fault_injector(
                FaultInjector(seed=77, default_policy=FaultPolicy(
                    drop_prob=0.02, corrupt_prob=0.01,
                    duplicate_prob=0.02, delay_jitter_ns=100.0)))
            gctx = cluster.create_global_context(1, 16 * PAGE_SIZE)
            session = RMCSession(cluster.nodes[0].core, gctx.qp(0),
                                 gctx.entry(0))
            cluster.poke_segment(1, 1, 0, bytes(range(256)) * 8)

            def app(sim):
                lbuf = session.alloc_buffer(8192)
                for _ in range(12):
                    yield from session.read_sync(1, 0, lbuf, 2048)

            cluster.sim.process(app(cluster.sim))
            cluster.run(until=50_000_000)
            snap = telemetry.snapshot(cluster)
            return {
                "time_ns": cluster.sim.now,
                "injector": injector.stats(),
                "fabric": cluster.fabric.stats(),
                "counters": [n.rmc_counters for n in snap.nodes],
                "node_stats": [n.fabric_node_stats for n in snap.nodes],
            }

        first = chaotic_run()
        second = chaotic_run()
        assert first == second
        # The workload was genuinely perturbed, not trivially clean.
        assert first["injector"]["fault_drops"] > 0


class TestRunAllScript:
    def test_fig1_subcommand_runs(self):
        result = subprocess.run(
            [sys.executable, "benchmarks/run_all.py", "--quick",
             "--only", "fig1"],
            capture_output=True, text=True, timeout=120, cwd="/root/repo")
        assert result.returncode == 0, result.stderr
        assert "Fig. 1" in result.stdout
        assert "all experiments completed" in result.stdout
