"""Determinism guarantees: identical runs produce identical results.

The simulation kernel breaks timestamp ties FIFO and every stochastic
input is seeded, so any experiment is exactly repeatable — the property
that makes the EXPERIMENTS.md numbers reproducible and regressions
bisectable.
"""

import subprocess
import sys

from repro.workloads import remote_read_latency, send_recv_latency


class TestDeterminism:
    def test_read_latency_is_bit_identical_across_runs(self):
        first = remote_read_latency(sizes=(64, 1024), iterations=6)
        second = remote_read_latency(sizes=(64, 1024), iterations=6)
        for a, b in zip(first, second):
            assert a.mean_ns == b.mean_ns
            assert a.p99_ns == b.p99_ns

    def test_messaging_latency_is_bit_identical(self):
        first = send_recv_latency(sizes=(64,), threshold=256, rounds=4)
        second = send_recv_latency(sizes=(64,), threshold=256, rounds=4)
        assert first[0].latency_us == second[0].latency_us

    def test_pagerank_is_bit_identical(self):
        from repro.apps import run_sonuma_bulk, zipf_graph

        graph = zipf_graph(96, avg_degree=4, seed=3)
        first = run_sonuma_bulk(graph, 2)
        second = run_sonuma_bulk(graph, 2)
        assert first.elapsed_ns == second.elapsed_ns
        assert first.ranks == second.ranks


class TestRunAllScript:
    def test_fig1_subcommand_runs(self):
        result = subprocess.run(
            [sys.executable, "benchmarks/run_all.py", "--quick",
             "--only", "fig1"],
            capture_output=True, text=True, timeout=120, cwd="/root/repo")
        assert result.returncode == 0, result.stderr
        assert "Fig. 1" in result.stdout
        assert "all experiments completed" in result.stdout
