"""Node-level fault tolerance, end to end (§5.1 + §8 killer apps).

Acceptance tests for the crash/restart story: a node killed mid-BSP is
evicted within its lease, survivors restart from the last peer-memory
checkpoint, and the final answer is *bit-for-bit* the fault-free one; a
replicated KV primary that crashes (or gray-fails: alive on the data
path, dead to the control plane) loses no acknowledged PUT, its stale
replies are fenced at the NI, and its restarted incarnation rejoins
under a new epoch.
"""

import itertools

import pytest

from repro.apps import (
    BSPEngine,
    FailoverKVClient,
    FaultTolerantBSPEngine,
    PageRankProgram,
    ReplicatedKVServer,
)
from repro.apps.graph import zipf_graph
from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
INTERVAL = 2_000.0
LEASE = 6_000.0


class TestCrashDuringPageRank:
    def _graph(self):
        return zipf_graph(60, avg_degree=4, seed=3)

    def _baseline(self, graph):
        base = BSPEngine(graph, 3, seed=7)
        return base.run(PageRankProgram(), max_supersteps=4,
                        stop_on_convergence=False)

    def test_fault_free_ft_run_matches_base_engine(self):
        graph = self._graph()
        expect = self._baseline(graph)
        eng = FaultTolerantBSPEngine(graph, 3, seed=7, checkpoint_every=1)
        got = eng.run(PageRankProgram(), max_supersteps=4,
                      stop_on_convergence=False)
        assert got.values == expect.values        # bit-for-bit
        assert got.recoveries == 0
        assert got.checkpoints == 3 * 4           # every rank, every step

    def test_mid_superstep_crash_restarts_from_checkpoint(self):
        graph = self._graph()
        expect = self._baseline(graph)
        eng = FaultTolerantBSPEngine(graph, 3, seed=7, checkpoint_every=1)
        # Restart early enough that the rejoin ping round completes
        # while the survivors are still computing (the simulation ends
        # with the workers; pings alone don't keep it alive).
        eng.controller.schedule_crash(1, at_ns=7_000.0,
                                      restart_after_ns=20_000.0)
        got = eng.run(PageRankProgram(), max_supersteps=4,
                      stop_on_convergence=False)
        # Survivors recovered once and the answer is exactly fault-free.
        assert got.values == expect.values        # bit-for-bit
        assert got.recoveries == 1
        # The victim was evicted within its lease and rejoined the
        # cluster (not the computation) after restart, in a new epoch.
        ms = eng.membership
        assert ms.evictions == 1
        assert ms.rejoins == 1
        assert ms.incarnation_of(1) == 2
        assert ms.epoch == 3                      # start, evict, rejoin
        assert ms.mttr_ns > 0

    def test_crash_racing_the_final_barrier(self):
        """The regression that motivated folding the final rendezvous
        into the resilient loop: a crash landing while some survivors
        have finished and others are mid-superstep must not deadlock."""
        graph = self._graph()
        expect = self._baseline(graph)
        for every in (1, 2):
            eng = FaultTolerantBSPEngine(graph, 3, seed=7,
                                         checkpoint_every=every)
            eng.controller.schedule_crash(1, at_ns=16_000.0,
                                          restart_after_ns=60_000.0)
            got = eng.run(PageRankProgram(), max_supersteps=4,
                          stop_on_convergence=False)
            assert got.values == expect.values    # bit-for-bit

    def test_sparser_checkpoint_interval_still_bit_exact(self):
        graph = self._graph()
        expect = self._baseline(graph)
        eng = FaultTolerantBSPEngine(graph, 3, seed=7, checkpoint_every=2)
        eng.controller.schedule_crash(0, at_ns=7_000.0,
                                      restart_after_ns=60_000.0)
        got = eng.run(PageRankProgram(), max_supersteps=4,
                      stop_on_convergence=False)
        assert got.values == expect.values
        assert got.recoveries == 1
        assert got.checkpoints < 3 * 4            # actually sparser


class TestReplicatedKVFailover:
    KEYS = {k: bytes([k]) * 8 for k in range(1, 13)}
    BUCKETS = 64

    def _build(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=3))
        membership = cluster.enable_membership(interval_ns=INTERVAL,
                                               lease_ns=LEASE)
        controller = cluster.fault_controller(seed=0)
        gctx = cluster.create_global_context(CTX, 64 * PAGE_SIZE)
        sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                                  gctx.entry(n)) for n in range(3)}
        server = ReplicatedKVServer(sessions[1], backups=[2],
                                    num_buckets=self.BUCKETS)
        client = FailoverKVClient(sessions[0], [1, 2],
                                  num_buckets=self.BUCKETS,
                                  membership=membership)
        return cluster, membership, controller, sessions, server, client

    def test_gray_primary_fenced_failover_and_rejoin(self):
        """The split-brain acceptance path: the primary goes gray (keeps
        serving, stops answering probes), is evicted, its still-flowing
        pre-crash replies are fenced at the client NI — never delivered
        to a CQ — and the client fails over with zero lost acked PUTs.
        The primary then crash/restarts and rejoins in a new epoch."""
        cluster, ms, ctrl, sessions, server, client = self._build()
        outcome = {}

        def scenario(sim):
            # Phase 1: every PUT fully replicated before the ack.
            for k, v in self.KEYS.items():
                yield from server.put_replicated(k, v)
            # Phase 2: primary goes gray; the client keeps reading
            # through the eviction. In-flight replies from the old
            # incarnation die at the NI fence; the client's pending op
            # error-completes and it fails over to the backup.
            ctrl.gray_fail(1)
            deadline = sim.now + 4 * LEASE
            keys = itertools.cycle(self.KEYS)
            while sim.now < deadline:
                k = next(keys)
                v = yield from client.get(k)
                assert v == self.KEYS[k]
            # Phase 3: every acked PUT must be served post-failover.
            final = {}
            for k in self.KEYS:
                final[k] = yield from client.get(k)
            outcome["final"] = final
            # Phase 4: the gray primary is actually dead now; reboot it
            # and wait for the control plane to readmit it.
            ctrl.crash(1)
            ctrl.restart(1)
            for _ in range(50):
                if ms.is_live(1):
                    break
                yield sim.timeout(INTERVAL)
            outcome["rejoined"] = ms.is_live(1)

        cluster.sim.process(scenario(cluster.sim))
        cluster.run(until=10_000_000)

        assert outcome["final"] == self.KEYS      # zero lost acked PUTs
        assert server.puts_acked == len(self.KEYS)
        assert server.replica_writes == len(self.KEYS)
        stats = client.availability
        assert stats.failovers >= 1
        assert stats.gets_failed == 0             # never fully unavailable
        assert stats.availability == 1.0
        # Stale replies from the evicted incarnation were dropped at the
        # link layer of the client's NI, before any pipeline or CQ.
        assert cluster.nodes[0].ni.epoch_fenced > 0
        # Rejoin under a fresh incarnation and a new epoch.
        assert outcome["rejoined"]
        assert ms.incarnation_of(1) == 2
        assert ms.epoch == 3                      # start, evict, rejoin
        assert ms.evictions == 1 and ms.rejoins == 1

    def test_hard_crash_failover_serves_all_acked_puts(self):
        cluster, ms, ctrl, sessions, server, client = self._build()
        outcome = {}

        def scenario(sim):
            for k, v in self.KEYS.items():
                yield from server.put_replicated(k, v)
            ctrl.crash(1)
            # Let the lease expire: membership evicts the primary before
            # the client's next read.
            yield sim.timeout(3 * LEASE)
            final = {}
            for k in self.KEYS:
                final[k] = yield from client.get(k)
            outcome["final"] = final

        cluster.sim.process(scenario(cluster.sim))
        cluster.run(until=10_000_000)
        assert outcome["final"] == self.KEYS
        assert client.availability.gets_failed == 0
        # Membership had already evicted the primary, so the client
        # skipped it outright instead of burning a timeout per GET —
        # failover at epoch-change speed, and no per-op errors at all.
        assert client.availability.evicted_skips == 1
        assert client.availability.replica_errors == 0
        assert client.availability.failovers == 1
        assert client.active_replica == 2

    def test_primary_rejoin_unsticks_failover_client(self):
        """Regression: after a failover the client camped on the backup
        forever — ``current`` was never reset once the primary rejoined,
        so every later GET paid the backup path for no reason. An epoch
        advance plus a live preferred replica must trigger a recovery
        probe, and reads go home once the primary provably serves the
        same data the backup does (liveness alone is not enough: a
        rejoined node holds a wiped table until the app re-syncs)."""
        cluster, ms, ctrl, sessions, server, client = self._build()
        outcome = {}

        def scenario(sim):
            for k, v in self.KEYS.items():
                yield from server.put_replicated(k, v)
            ctrl.crash(1)
            yield sim.timeout(3 * LEASE)          # eviction fires
            v = yield from client.get(1)
            assert v == self.KEYS[1]              # served by the backup
            outcome["after_crash"] = client.active_replica
            ctrl.restart(1)
            for _ in range(50):
                if ms.is_live(1):
                    break
                yield sim.timeout(INTERVAL)
            assert ms.is_live(1)
            # The rebooted primary came back with wiped memory and no
            # QPs; the application builds a fresh session and re-syncs
            # the table before reads return home.
            node1 = cluster.nodes[1]
            fresh = ReplicatedKVServer(
                RMCSession(node1.core,
                           node1.driver.create_qp(CTX, size=64),
                           sessions[1].ctx),
                backups=[2], num_buckets=self.BUCKETS)
            for k, v in self.KEYS.items():
                yield from fresh.put_replicated(k, v)
            final = {}
            for k in self.KEYS:
                final[k] = yield from client.get(k)
            outcome["final"] = final
            outcome["after_rejoin"] = client.active_replica

        cluster.sim.process(scenario(cluster.sim))
        cluster.run(until=10_000_000)
        assert outcome["after_crash"] == 2        # failed over
        assert outcome["after_rejoin"] == 1       # recovered
        assert outcome["final"] == self.KEYS
        # Exactly one shadow probe (the first GET after the rejoin
        # epoch), verified against the backup's answer, sent reads home.
        assert client.availability.recovery_probes == 1
        assert client.availability.recoveries == 1
        assert client.availability.failovers == 1
        assert client.availability.gets_failed == 0
        assert ms.evictions == 1 and ms.rejoins == 1


class TestControllerDeterminism:
    def _run_once(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=3))
        membership = cluster.enable_membership(interval_ns=INTERVAL,
                                               lease_ns=LEASE)
        controller = cluster.fault_controller(seed=123)
        schedule = controller.schedule_random_crashes(
            count=2, horizon_ns=40_000.0, restart_after_ns=20_000.0)

        def ticker(sim):
            while sim.now < 200_000.0:
                yield sim.timeout(INTERVAL)

        cluster.sim.process(ticker(cluster.sim))
        cluster.run(until=200_000.0)
        return schedule, controller.timeline(), membership.stats()

    def test_same_seed_same_timeline(self):
        assert self._run_once() == self._run_once()
