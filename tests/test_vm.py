"""Unit + property tests for the virtual-memory substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.vm import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    AddressSpace,
    FrameAllocator,
    OutOfMemoryError,
    PageFault,
    PageTable,
    PageWalker,
    PhysicalMemory,
    RemoteAddress,
    SegmentViolation,
    TLB,
    line_align_down,
    lines_in_range,
    page_number,
    page_offset,
)


class TestAddressHelpers:
    def test_line_alignment(self):
        assert line_align_down(0) == 0
        assert line_align_down(63) == 0
        assert line_align_down(64) == 64
        assert line_align_down(130) == 128

    def test_lines_in_range_single(self):
        assert lines_in_range(0, 1) == [0]
        assert lines_in_range(10, 54) == [0]

    def test_lines_in_range_straddles(self):
        # 60..70 touches lines 0 and 64.
        assert lines_in_range(60, 10) == [0, 64]

    def test_lines_in_range_multi(self):
        assert lines_in_range(0, 256) == [0, 64, 128, 192]

    def test_lines_in_range_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lines_in_range(0, 0)

    @given(addr=st.integers(min_value=0, max_value=2**40),
           length=st.integers(min_value=1, max_value=65536))
    @settings(max_examples=200)
    def test_lines_cover_range_exactly(self, addr, length):
        lines = lines_in_range(addr, length)
        # Every byte of the range falls in some returned line.
        assert lines[0] <= addr < lines[0] + CACHE_LINE_SIZE
        last_byte = addr + length - 1
        assert lines[-1] <= last_byte < lines[-1] + CACHE_LINE_SIZE
        # Lines are consecutive and line-aligned.
        for a, b in zip(lines, lines[1:]):
            assert b - a == CACHE_LINE_SIZE
        assert all(line % CACHE_LINE_SIZE == 0 for line in lines)

    def test_remote_address_validation(self):
        with pytest.raises(ValueError):
            RemoteAddress(-1, 0, 0)
        with pytest.raises(ValueError):
            RemoteAddress(0, -1, 0)
        with pytest.raises(ValueError):
            RemoteAddress(0, 0, -1)

    def test_remote_address_lines(self):
        ra = RemoteAddress(node_id=2, ctx_id=1, offset=60)
        parts = list(ra.lines(10))
        assert [p.offset for p in parts] == [0, 64]
        assert all(p.node_id == 2 and p.ctx_id == 1 for p in parts)


class TestPhysicalMemory:
    def test_read_write_roundtrip(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        mem.write(100, b"hello world")
        assert mem.read(100, 11) == b"hello world"

    def test_out_of_bounds_rejected(self):
        mem = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(IndexError):
            mem.read(PAGE_SIZE - 4, 8)
        with pytest.raises(IndexError):
            mem.write(PAGE_SIZE, b"x")

    def test_u64_roundtrip(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_u64(16, 0xDEADBEEF12345678)
        assert mem.read_u64(16) == 0xDEADBEEF12345678

    def test_size_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            PhysicalMemory(PAGE_SIZE + 1)

    def test_frame_allocator_exhaustion(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(mem)
        alloc.alloc_frame()
        alloc.alloc_frame()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_frame()

    def test_frame_recycling(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(mem)
        f0 = alloc.alloc_frame()
        alloc.alloc_frame()
        alloc.free_frame(f0)
        f2 = alloc.alloc_frame()
        assert f2 == f0

    def test_fresh_frame_is_zeroed(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(mem)
        f = alloc.alloc_frame()
        mem.write(f, b"\xff" * 64)
        alloc.free_frame(f)
        f2 = alloc.alloc_frame()
        assert mem.read(f2, 64) == bytes(64)


class TestPageTable:
    def _make(self, npages=8):
        mem = PhysicalMemory(npages * PAGE_SIZE)
        return PageTable(asid=1), FrameAllocator(mem)

    def test_map_translate(self):
        pt, alloc = self._make()
        frame = alloc.alloc_frame()
        pt.map(0x10000000, frame)
        assert pt.translate(0x10000000) == frame
        assert pt.translate(0x10000000 + 123) == frame + 123

    def test_unmapped_faults(self):
        pt, _ = self._make()
        with pytest.raises(PageFault):
            pt.translate(0x123000)

    def test_double_map_rejected(self):
        pt, alloc = self._make()
        pt.map(0x10000000, alloc.alloc_frame())
        with pytest.raises(ValueError):
            pt.map(0x10000000, alloc.alloc_frame())

    def test_unmap_then_fault(self):
        pt, alloc = self._make()
        pt.map(0x10000000, alloc.alloc_frame())
        pt.unmap(0x10000000)
        with pytest.raises(PageFault):
            pt.translate(0x10000000)

    def test_pinned_page_cannot_unmap(self):
        pt, alloc = self._make()
        pt.map(0x10000000, alloc.alloc_frame(), pinned=True)
        with pytest.raises(ValueError):
            pt.unmap(0x10000000)

    def test_lookup_reports_levels(self):
        pt, alloc = self._make()
        pt.map(0x10000000, alloc.alloc_frame())
        _pte, levels = pt.lookup(0x10000000)
        assert levels == 4

    @given(pages=st.lists(st.integers(min_value=0, max_value=2**20),
                          min_size=1, max_size=32, unique=True))
    @settings(max_examples=50)
    def test_translate_is_inverse_of_map(self, pages):
        """Property: translate(v + off) == frame(v) + off for all mapped v."""
        pt = PageTable(asid=7)
        mapping = {}
        for i, vpn in enumerate(pages):
            vaddr = vpn * PAGE_SIZE
            frame = i * PAGE_SIZE
            pt.map(vaddr, frame)
            mapping[vaddr] = frame
        for vaddr, frame in mapping.items():
            assert pt.translate(vaddr + 17) == frame + 17
        assert pt.mapped_pages == len(pages)

    def test_iter_mappings_roundtrip(self):
        pt = PageTable(asid=1)
        expected = {}
        for i in range(10):
            vaddr = (0x4000 + i) * PAGE_SIZE
            pt.map(vaddr, i * PAGE_SIZE)
            expected[vaddr] = i * PAGE_SIZE
        seen = {v: pte.frame_paddr for v, pte in pt.iter_mappings()}
        assert seen == expected


class TestPageWalker:
    def test_walk_charges_one_access_per_level(self):
        sim = Simulator()
        costs = []

        def access():
            costs.append(sim.now)
            yield sim.timeout(10)

        walker = PageWalker(access)
        pt = PageTable(asid=1)
        pt.map(0x10000000, 0)

        def proc(sim):
            pte = yield from walker.walk(pt, 0x10000000)
            return pte

        p = sim.process(proc(sim))
        sim.run()
        assert p.value.frame_paddr == 0
        assert len(costs) == 4           # 4 levels
        assert sim.now == pytest.approx(40.0)
        assert walker.walks == 1
        assert walker.levels_touched == 4


class TestTLB:
    def _pte(self, frame=0):
        from repro.vm import PageTableEntry
        return PageTableEntry(frame)

    def test_miss_then_hit(self):
        tlb = TLB(entries=32, associativity=4)
        assert tlb.lookup(1, 0x1000_0000) is None
        tlb.insert(1, 0x1000_0000, self._pte())
        assert tlb.lookup(1, 0x1000_0000) is not None
        assert tlb.hits == 1 and tlb.misses == 1

    def test_asid_isolation(self):
        tlb = TLB()
        tlb.insert(1, 0x1000_0000, self._pte())
        assert tlb.lookup(2, 0x1000_0000) is None

    def test_lru_eviction_within_set(self):
        # Direct-mapped sets of size 2: fill a set, touch first, insert a
        # third conflicting entry -> the untouched one is evicted.
        tlb = TLB(entries=2, associativity=2)  # a single set
        a, b, c = PAGE_SIZE * 1, PAGE_SIZE * 2, PAGE_SIZE * 3
        tlb.insert(1, a, self._pte(0))
        tlb.insert(1, b, self._pte(PAGE_SIZE))
        assert tlb.lookup(1, a) is not None   # a becomes MRU
        tlb.insert(1, c, self._pte(2 * PAGE_SIZE))
        assert tlb.lookup(1, a) is not None
        assert tlb.lookup(1, b) is None       # b was LRU -> evicted

    def test_invalidate_page(self):
        tlb = TLB()
        tlb.insert(1, 0x1000_0000, self._pte())
        assert tlb.invalidate_page(1, 0x1000_0000)
        assert not tlb.invalidate_page(1, 0x1000_0000)
        assert tlb.lookup(1, 0x1000_0000) is None

    def test_invalidate_asid(self):
        tlb = TLB()
        for i in range(5):
            tlb.insert(1, i * PAGE_SIZE, self._pte())
            tlb.insert(2, (100 + i) * PAGE_SIZE, self._pte())
        assert tlb.invalidate_asid(1) == 5
        assert tlb.occupancy == 5
        assert tlb.lookup(2, 100 * PAGE_SIZE) is not None

    def test_flush(self):
        tlb = TLB()
        for i in range(8):
            tlb.insert(1, i * PAGE_SIZE, self._pte())
        tlb.flush()
        assert tlb.occupancy == 0

    def test_occupancy_bounded_by_entries(self):
        tlb = TLB(entries=8, associativity=2)
        for i in range(100):
            tlb.insert(1, i * PAGE_SIZE, self._pte())
        assert tlb.occupancy <= 8

    @given(vpns=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_property_occupancy_never_exceeds_capacity(self, vpns):
        tlb = TLB(entries=16, associativity=4)
        for vpn in vpns:
            tlb.insert(1, vpn * PAGE_SIZE, self._pte())
        assert tlb.occupancy <= 16
        # A just-inserted entry must be resident.
        tlb.insert(1, 42 * PAGE_SIZE, self._pte())
        assert tlb.lookup(1, 42 * PAGE_SIZE) is not None


class TestAddressSpace:
    def _space(self, npages=64):
        mem = PhysicalMemory(npages * PAGE_SIZE)
        return AddressSpace(asid=1, frames=FrameAllocator(mem)), mem

    def test_allocate_backs_pages(self):
        space, _ = self._space()
        base = space.allocate(3 * PAGE_SIZE)
        for off in range(0, 3 * PAGE_SIZE, PAGE_SIZE):
            assert space.page_table.is_mapped(base + off)

    def test_allocations_do_not_overlap(self):
        space, _ = self._space()
        a = space.allocate(PAGE_SIZE)
        b = space.allocate(PAGE_SIZE)
        assert b >= a + 2 * PAGE_SIZE  # guard page between regions

    def test_segment_registration_and_bounds(self):
        space, _ = self._space()
        seg = space.register_segment(ctx_id=5, size=4 * PAGE_SIZE)
        seg.check(0, 64)
        seg.check(4 * PAGE_SIZE - 64, 64)
        with pytest.raises(SegmentViolation):
            seg.check(4 * PAGE_SIZE - 32, 64)
        with pytest.raises(SegmentViolation):
            seg.check(-1, 64)

    def test_single_segment_per_space(self):
        space, _ = self._space()
        space.register_segment(ctx_id=5, size=PAGE_SIZE)
        with pytest.raises(RuntimeError):
            space.register_segment(ctx_id=6, size=PAGE_SIZE)

    def test_data_roundtrip_through_translation(self):
        space, mem = self._space()
        base = space.allocate(2 * PAGE_SIZE)
        # Write through translation, read back through translation.
        vaddr = base + PAGE_SIZE - 4  # straddles nothing (within page)
        mem.write(space.translate(vaddr), b"abcd")
        assert mem.read(space.translate(vaddr), 4) == b"abcd"

    def test_allocate_rejects_nonpositive(self):
        space, _ = self._space()
        with pytest.raises(ValueError):
            space.allocate(0)
