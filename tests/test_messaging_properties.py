"""Property-based tests for the messaging protocol.

The messenger had two real (and subtle) bugs during development — a
shared staging ring corrupting cross-peer sends, and unaligned slots
tearing messages — both of the class hypothesis finds well: arbitrary
message-size sequences crossing the push/pull threshold.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import Messenger, MessagingConfig, RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 96 * PAGE_SIZE

message_sizes = st.lists(
    st.integers(min_value=1, max_value=2048),  # spans the 256B threshold
    min_size=1, max_size=8)


def build(num_nodes=2):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    gctx = cluster.create_global_context(CTX, SEG)
    messengers = {}
    for n in range(num_nodes):
        session = RMCSession(cluster.nodes[n].core, gctx.qp(n),
                             gctx.entry(n))
        messengers[n] = Messenger(session, n, num_nodes,
                                  MessagingConfig(threshold=256))
    return cluster, messengers


def payload_for(index: int, size: int) -> bytes:
    return bytes((index * 131 + i * 7) % 256 for i in range(size))


class TestMessagingProperties:
    @given(sizes=message_sizes)
    @settings(max_examples=10, deadline=None)
    def test_any_size_sequence_delivered_intact_in_order(self, sizes):
        cluster, messengers = build()
        expected = [payload_for(i, s) for i, s in enumerate(sizes)]

        def sender(sim):
            for message in expected:
                yield from messengers[0].send(1, message)

        def receiver(sim):
            received = []
            for _ in expected:
                received.append((yield from messengers[1].recv(0)))
            return received

        proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run(until=500_000_000)
        assert proc.value == expected

    @given(sizes_ab=message_sizes, sizes_ba=message_sizes)
    @settings(max_examples=8, deadline=None)
    def test_bidirectional_traffic_does_not_cross_contaminate(
            self, sizes_ab, sizes_ba):
        """Each endpoint sends and receives *concurrently* — the safe
        shape for full-duplex traffic. (Send-everything-then-receive is
        the bounded-buffer analogue of an MPI "unsafe" program: with
        both windows full neither side ever drains the other, which is
        exactly what ``send(timeout_ns=...)`` exists to escape — see
        test_messaging.py for that behaviour.)"""
        cluster, messengers = build()
        expected_ab = [payload_for(i, s) for i, s in enumerate(sizes_ab)]
        expected_ba = [payload_for(i + 100, s)
                       for i, s in enumerate(sizes_ba)]

        def sender(sim, me, peer, outgoing):
            for message in outgoing:
                yield from messengers[me].send(peer, message)

        def receiver(sim, me, peer, incoming_count, results):
            for _ in range(incoming_count):
                results.append((yield from messengers[me].recv(peer)))

        got_at_b, got_at_a = [], []
        cluster.sim.process(sender(cluster.sim, 0, 1, expected_ab))
        cluster.sim.process(receiver(cluster.sim, 0, 1,
                                     len(expected_ba), got_at_a))
        cluster.sim.process(sender(cluster.sim, 1, 0, expected_ba))
        cluster.sim.process(receiver(cluster.sim, 1, 0,
                                     len(expected_ab), got_at_b))
        cluster.run(until=500_000_000)
        assert got_at_b == expected_ab
        assert got_at_a == expected_ba

    @given(sizes=st.lists(st.integers(min_value=1, max_value=512),
                          min_size=1, max_size=5))
    @settings(max_examples=6, deadline=None)
    def test_three_node_fan_in(self, sizes):
        """Two senders to one receiver: per-channel order and content
        hold regardless of interleaving."""
        cluster, messengers = build(num_nodes=3)
        msgs_from_1 = [payload_for(i, s) for i, s in enumerate(sizes)]
        msgs_from_2 = [payload_for(i + 50, s)
                       for i, s in enumerate(sizes)]

        def sender(sim, me, messages):
            for message in messages:
                yield from messengers[me].send(0, message)

        def receiver(sim):
            got = {1: [], 2: []}
            for _ in msgs_from_1:
                got[1].append((yield from messengers[0].recv(1)))
            for _ in msgs_from_2:
                got[2].append((yield from messengers[0].recv(2)))
            return got

        proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim, 1, msgs_from_1))
        cluster.sim.process(sender(cluster.sim, 2, msgs_from_2))
        cluster.run(until=500_000_000)
        assert proc.value[1] == msgs_from_1
        assert proc.value[2] == msgs_from_2
