"""Integration tests for the software messaging and barrier libraries."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import Barrier, Messenger, MessagingConfig, RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG_SIZE = 64 * PAGE_SIZE


def build(num_nodes=2, config=None):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    gctx = cluster.create_global_context(CTX, SEG_SIZE)
    sessions = {}
    messengers = {}
    for n in range(num_nodes):
        node = cluster.nodes[n]
        sessions[n] = RMCSession(node.core, gctx.qp(n), gctx.entry(n))
        messengers[n] = Messenger(sessions[n], n, num_nodes, config)
    return cluster, sessions, messengers


class TestLayout:
    def test_regions_do_not_overlap(self):
        from repro.runtime import CommLayout

        layout = CommLayout(SEG_SIZE, 4, MessagingConfig())
        spans = []
        for peer in range(4):
            base = layout.region_base(peer)
            spans.append((base, base + layout.config.region_bytes))
        spans.append((layout.barrier_base, SEG_SIZE))
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b
        assert layout.app_bytes == spans[0][0]

    def test_segment_too_small_rejected(self):
        from repro.runtime import CommLayout

        with pytest.raises(ValueError):
            CommLayout(1024, 16, MessagingConfig())

    def test_unaligned_segment_still_yields_aligned_slots(self):
        """Regression: with a segment size that is not a multiple of the
        line size, every slot/credit/ack/barrier offset must still be
        line-aligned — an unaligned slot write would be torn into two
        non-atomic line writes at the destination."""
        from repro.runtime import CommLayout

        layout = CommLayout(SEG_SIZE + 24 + 8 * 13, 3, MessagingConfig())
        for peer in range(3):
            for slot in range(layout.config.slots):
                assert layout.slot_offset(peer, slot) % 64 == 0
            assert layout.credit_offset(peer) % 64 == 0
            assert layout.ack_offset(peer) % 64 == 0
            assert layout.staging_offset(peer) % 64 == 0
            assert layout.barrier_offset(peer) % 64 == 0

    def test_staging_must_be_line_aligned(self):
        with pytest.raises(ValueError, match="line-aligned"):
            MessagingConfig(staging_bytes=1000)


class TestPushMessages:
    def test_small_message_roundtrip(self):
        cluster, _sessions, messengers = build()
        payload = b"hello soNUMA"

        def sender(sim):
            yield from messengers[0].send(1, payload)

        def receiver(sim):
            data = yield from messengers[1].recv(0)
            return data

        recv_proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert recv_proc.value == payload

    def test_message_larger_than_one_slot_is_chunked(self):
        cluster, _s, messengers = build()
        payload = bytes(range(256)) * 1  # > 48B, <= default threshold 256

        def sender(sim):
            yield from messengers[0].send(1, payload)

        def receiver(sim):
            return (yield from messengers[1].recv(0))

        recv_proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert recv_proc.value == payload

    def test_many_messages_in_order(self):
        cluster, _s, messengers = build()
        messages = [bytes([i]) * (10 + i) for i in range(40)]

        def sender(sim):
            for msg in messages:
                yield from messengers[0].send(1, msg)

        def receiver(sim):
            received = []
            for _ in messages:
                received.append((yield from messengers[1].recv(0)))
            return received

        recv_proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert recv_proc.value == messages

    def test_credit_flow_control_bounds_sender(self):
        # More messages than slots: sender must stall until credits return;
        # everything still arrives intact and in order.
        config = MessagingConfig(slots=4, threshold=256)
        cluster, _s, messengers = build(config=config)
        messages = [bytes([i % 251]) * 20 for i in range(30)]

        def sender(sim):
            for msg in messages:
                yield from messengers[0].send(1, msg)

        def receiver(sim):
            out = []
            for _ in messages:
                out.append((yield from messengers[1].recv(0)))
            return out

        recv_proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert recv_proc.value == messages


class TestPullMessages:
    def test_large_message_uses_pull(self):
        cluster, _s, messengers = build()
        payload = bytes((i * 31) % 256 for i in range(8192))

        def sender(sim):
            yield from messengers[0].send(1, payload)

        def receiver(sim):
            return (yield from messengers[1].recv(0))

        recv_proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert recv_proc.value == payload

    def test_threshold_zero_forces_pull_for_everything(self):
        config = MessagingConfig(threshold=0)
        cluster, _s, messengers = build(config=config)
        payload = b"tiny"

        def sender(sim):
            yield from messengers[0].send(1, payload)

        def receiver(sim):
            return (yield from messengers[1].recv(0))

        recv_proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert recv_proc.value == payload

    def test_pull_stream_reuses_staging(self):
        config = MessagingConfig(threshold=64, pull_window=2,
                                 staging_bytes=8192)
        cluster, _s, messengers = build(config=config)
        messages = [bytes([i]) * 2048 for i in range(10)]

        def sender(sim):
            for msg in messages:
                yield from messengers[0].send(1, msg)

        def receiver(sim):
            out = []
            for _ in messages:
                out.append((yield from messengers[1].recv(0)))
            return out

        recv_proc = cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert recv_proc.value == messages

    def test_message_exceeding_staging_rejected(self):
        config = MessagingConfig(threshold=64, staging_bytes=4096,
                                 pull_window=4)
        cluster, _s, messengers = build(config=config)

        def sender(sim):
            with pytest.raises(ValueError, match="staging"):
                yield from messengers[0].send(1, bytes(2048))

        cluster.sim.process(sender(cluster.sim))
        cluster.run()


class TestBidirectional:
    def test_ping_pong(self):
        cluster, _s, messengers = build()
        rounds = 10

        def ping(sim):
            for i in range(rounds):
                yield from messengers[0].send(1, bytes([i]) * 8)
                reply = yield from messengers[0].recv(1)
                assert reply == bytes([i]) * 8

        def pong(sim):
            for _ in range(rounds):
                msg = yield from messengers[1].recv(0)
                yield from messengers[1].send(0, msg)

        p = cluster.sim.process(ping(cluster.sim))
        cluster.sim.process(pong(cluster.sim))
        cluster.run()
        assert p.ok
        assert messengers[0].messages_sent == rounds
        assert messengers[1].messages_received == rounds


class TestBarrier:
    def _barriers(self, cluster, sessions, n):
        return {i: Barrier(sessions[i], i, list(range(n)))
                for i in range(n)}

    def test_barrier_synchronizes_staggered_nodes(self):
        n = 4
        cluster, sessions, _m = build(num_nodes=n)
        barriers = self._barriers(cluster, sessions, n)
        exit_times = {}

        def worker(sim, node_id):
            yield sim.timeout(node_id * 1000)  # staggered arrivals
            yield from barriers[node_id].wait()
            exit_times[node_id] = sim.now

        for i in range(n):
            cluster.sim.process(worker(cluster.sim, i))
        cluster.run()
        # Nobody exits before the last arrival at t = 3000.
        assert all(t >= 3000 for t in exit_times.values())
        # Exits are tightly clustered (all within a few microseconds).
        assert max(exit_times.values()) - min(exit_times.values()) < 5000

    def test_barrier_is_reusable_across_generations(self):
        n = 3
        cluster, sessions, _m = build(num_nodes=n)
        barriers = self._barriers(cluster, sessions, n)
        log = []

        def worker(sim, node_id):
            for superstep in range(5):
                yield sim.timeout((node_id + 1) * 97)
                yield from barriers[node_id].wait()
                log.append((superstep, node_id, sim.now))

        for i in range(n):
            cluster.sim.process(worker(cluster.sim, i))
        cluster.run()
        assert len(log) == 15
        # All of superstep k finishes before any of superstep k+1.
        by_step = {}
        for step, _node, t in log:
            by_step.setdefault(step, []).append(t)
        for step in range(4):
            assert max(by_step[step]) <= min(by_step[step + 1])


class TestSendTimeout:
    def test_head_to_head_send_escapes_via_timeout(self):
        """Both endpoints send with full windows and nobody receives —
        the bounded-buffer deadlock. ``timeout_ns`` turns it into a
        clean MessagingTimeout on both sides instead of a hang."""
        from repro.runtime import MessagingTimeout

        cluster, _sessions, messengers = build(
            config=MessagingConfig(slots=2))
        outcome = {}

        def pusher(sim, me, peer):
            try:
                for _ in range(10):
                    yield from messengers[me].send(peer, b"y" * 40,
                                                   timeout_ns=100_000.0)
            except MessagingTimeout as exc:
                outcome[me] = (exc.peer, sim.now)

        cluster.sim.process(pusher(cluster.sim, 0, 1))
        cluster.sim.process(pusher(cluster.sim, 1, 0))
        cluster.run(until=10_000_000)
        assert outcome[0][0] == 1
        assert outcome[1][0] == 0
        # Prompt escape: within the timeout plus polling slack.
        assert max(t for _p, t in outcome.values()) < 300_000
