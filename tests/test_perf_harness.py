"""Smoke tests for the wall-clock perf harness and parallel runners."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def _load_bench_kernel():
    sys.path.insert(0, str(REPO / "benchmarks" / "perf"))
    try:
        import bench_kernel
    finally:
        sys.path.pop(0)
    return bench_kernel


def test_bench_kernel_suite_runs_and_counts_events():
    bench_kernel = _load_bench_kernel()
    results = bench_kernel.run_suite(events=2000, repeat=1)
    assert set(results) == {"timeout_chain", "delay_chain", "zero_delay",
                            "store_pingpong", "deferred_fanout"}
    for stats in results.values():
        assert stats["events"] > 0
        assert stats["wall_s"] > 0
        assert stats["events_per_sec"] > 0


def test_bench_kernel_cli_emits_schema(tmp_path):
    out = tmp_path / "BENCH_kernel.json"
    subprocess.run(
        [sys.executable, str(REPO / "benchmarks/perf/bench_kernel.py"),
         "--events", "2000", "--repeat", "1", "--out", str(out),
         "--baseline", str(REPO / "benchmarks/perf/baseline.json")],
        check=True, capture_output=True, cwd=REPO)
    payload = json.loads(out.read_text())
    assert payload["schema"] == "bench_kernel/v1"
    assert payload["peak_rss_kb"] > 0
    assert payload["aggregate"]["speedup_vs_baseline"] is not None


def test_run_all_parallel_output_byte_identical(tmp_path):
    """--parallel N must produce byte-identical stdout and JSON."""
    def run(extra):
        out = tmp_path / f"out{len(extra)}.json"
        proc = subprocess.run(
            [sys.executable, str(REPO / "benchmarks/run_all.py"),
             "--quick", "--only", "fig1", "--json", str(out)] + extra,
            check=True, capture_output=True, cwd=REPO)
        return proc.stdout, out.read_bytes()

    serial_stdout, serial_json = run([])
    parallel_stdout, parallel_json = run(["--parallel", "2"])
    assert serial_stdout == parallel_stdout
    assert serial_json == parallel_json


def test_pagerank_sweep_workers_match_serial():
    from repro.workloads.pagerank_sweep import pagerank_speedups

    kwargs = dict(node_counts=(2,), num_vertices=512, avg_degree=4,
                  llc_total_bytes=32 * 1024)
    serial = pagerank_speedups(workers=1, **kwargs)
    parallel = pagerank_speedups(workers=2, **kwargs)
    assert serial == parallel


def test_check_regression_gate(tmp_path):
    """The CI gate passes on the committed artifacts and fails on a
    fabricated 10x regression."""
    sys.path.insert(0, str(REPO / "benchmarks" / "perf"))
    try:
        import check_regression
    finally:
        sys.path.pop(0)

    baseline = REPO / "benchmarks/perf/baseline.json"
    base = json.loads(baseline.read_text())

    good = tmp_path / "good.json"
    good.write_text(json.dumps({
        "results": {k: {"events_per_sec": v}
                    for k, v in base["results"].items()},
    }))
    assert check_regression.main(["--bench", str(good),
                                  "--baseline", str(baseline)]) == 0

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "results": {k: {"events_per_sec": v / 10.0}
                    for k, v in base["results"].items()},
    }))
    assert check_regression.main(["--bench", str(bad),
                                  "--baseline", str(baseline)]) == 1


def test_check_regression_distinct_exit_codes(tmp_path):
    """0 = OK, 1 = regression, 2 = baseline/bench missing — CI can tell
    "the kernel got slow" apart from "the gate was never configured"."""
    sys.path.insert(0, str(REPO / "benchmarks" / "perf"))
    try:
        import check_regression
    finally:
        sys.path.pop(0)

    baseline = REPO / "benchmarks/perf/baseline.json"
    good = tmp_path / "good.json"
    good.write_text(json.dumps({
        "results": {k: {"events_per_sec": v}
                    for k, v in json.loads(
                        baseline.read_text())["results"].items()},
    }))

    # Missing baseline file -> 2.
    assert check_regression.main(
        ["--bench", str(good),
         "--baseline", str(tmp_path / "nope.json")]) == 2
    # Missing bench file -> 2.
    assert check_regression.main(
        ["--bench", str(tmp_path / "nope.json"),
         "--baseline", str(baseline)]) == 2
    # Unusable baseline (no overlapping benchmarks) -> 2.
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"results": {}}))
    assert check_regression.main(
        ["--bench", str(good), "--baseline", str(empty)]) == 2
    # Malformed JSON -> 2, not a traceback.
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert check_regression.main(
        ["--bench", str(good), "--baseline", str(broken)]) == 2
