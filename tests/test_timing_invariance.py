"""Timing invariance of the kernel fast paths and hot-path event elision.

The performance work (pooled events, the now-queue, bare-number yields,
``call_later`` elision, coalesced pipeline delays) must not move a
single simulated timestamp. These tests pin *exact float equality*
against golden values captured at the pre-optimization revision
(commit b29c655) on two end-to-end workloads:

* the chaos suite's zero-fault read/write workload (3 nodes, reliable
  transport armed, fault injector installed but silent), and
* a netpipe send/recv sweep through the full messaging stack.

If any of these move, an "optimization" changed simulated behavior and
must be reverted — see docs/architecture.md, "Kernel fast paths".
"""

from __future__ import annotations

from repro.cluster import Cluster, ClusterConfig
from repro.fabric import FaultInjector, FaultPolicy
from repro.node import NodeConfig
from repro.rmc import RMCConfig
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE
from repro.workloads.netpipe import send_recv_latency

CTX = 1
SEG = 16 * PAGE_SIZE

# Golden timestamps from the pre-optimization kernel (exact floats).
GOLDEN_CHAOS_FINAL_NS = 50_000_000
GOLDEN_CHAOS_READ_TIMES = [
    464.6666666666667,
    464.6666666666667,
    476.1666666666667,
    799.8333333333334,
    903.3333333333334,
    914.8333333333334,
    1123.5,
    1227.0,
    1238.5000000000002,
    1458.6666666666667,
    1550.6666666666667,
    1585.166666666667,
    1793.8333333333335,
    1874.3333333333335,
    1908.8333333333337,
    2140.5,
    2209.5,
    2255.5000000000005,
    2475.6666666666665,
    2543.1666666666656,
    2590.666666666667,
    2822.333333333333,
    2889.833333333332,
    2937.3333333333335,
    3168.9999999999995,
    3231.666666666665,
    3272.5,
    3527.166666666666,
    3578.3333333333317,
    3630.999999999998,
    3885.3333333333326,
    3930.999999999999,
    3972.4999999999977,
    4185.999999999999,
    4284.666666666664,
    4289.166666666666,
]
GOLDEN_NETPIPE_LATENCY_US = [
    0.22075,
    0.9231666666666666,
    0.8973055555555535,
]


def _pattern(tag: int, length: int) -> bytes:
    return bytes((tag * 37 + i) & 0xFF for i in range(length))


def test_chaos_zero_fault_timestamps_bit_identical():
    """tests/test_chaos.py's zero-fault workload: every read completion
    time and the final clock match the pre-optimization kernel exactly."""
    rmc_cfg = RMCConfig(retransmit_timeout_ns=5000.0, max_retries=4)
    cluster = Cluster(config=ClusterConfig(
        num_nodes=3, node=NodeConfig(rmc=rmc_cfg)))
    cluster.fabric.install_fault_injector(
        FaultInjector(seed=7, default_policy=FaultPolicy()))
    gctx = cluster.create_global_context(CTX, SEG)
    sessions = {
        n: RMCSession(cluster.nodes[n].core, gctx.qp(n), gctx.entry(n))
        for n in range(3)
    }
    for peer in range(3):
        cluster.poke_segment(peer, CTX, 0, _pattern(peer, 2048))

    read_times = []

    def app(sim, n):
        session = sessions[n]
        lbuf = session.alloc_buffer(8192)
        for rnd in range(6):
            for peer in range(3):
                if peer == n:
                    continue
                size = 64 * (1 + (rnd + n + peer) % 8)
                yield from session.read_sync(peer, 0, lbuf, size)
                read_times.append(sim.now)
        sig = _pattern(0xA0 + n, 512)
        session.buffer_poke(lbuf, sig)
        for peer in range(3):
            if peer == n:
                continue
            yield from session.write_sync(peer, 4096 + n * 512, lbuf, 512)

    for n in range(3):
        cluster.sim.process(app(cluster.sim, n))
    cluster.run(until=50_000_000)

    assert cluster.sim.now == GOLDEN_CHAOS_FINAL_NS
    assert read_times == GOLDEN_CHAOS_READ_TIMES


def test_netpipe_sweep_timestamps_bit_identical():
    """A send/recv latency sweep through the full messaging stack lands
    on exactly the pre-optimization latencies."""
    results = send_recv_latency(sizes=(32, 256, 1024), threshold=256,
                                rounds=3)
    assert [r.latency_us for r in results] == GOLDEN_NETPIPE_LATENCY_US
