"""Serving-tier building blocks: ring, loadgen, histogram, QP batching.

Four independent layers, each with its own contract:

* the consistent-hash ring must balance load across members (vnodes)
  and remap *only* the joining/leaving member's arcs on membership
  change — pinned with hypothesis over arbitrary member sets;
* the open-loop traffic generator must be a bit-deterministic pure
  function of its config (golden digests) — that is what makes the
  serving outcome worker-count-invariant;
* the log-linear histogram must report quantiles within its documented
  1/sub_buckets relative error, conservatively (never under the true
  quantile), and merge exactly;
* the QP batching fast path must amortize one doorbell (and one issue
  overhead) over a batch while completing every entry correctly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kvstore import AvailabilityStats, KVStats
from repro.cluster import Cluster, ClusterConfig
from repro.protocol import Opcode
from repro.rmc.queues import WQEntry
from repro.runtime import RMCSession
from repro.serving import (ConsistentHashRing, TraceConfig, generate_trace,
                           ShardMap, trace_digest)
from repro.telemetry import LogLinearHistogram
from repro.vm import PAGE_SIZE

members_st = st.lists(
    st.one_of(st.integers(min_value=0, max_value=10 ** 6),
              st.text(min_size=1, max_size=12)),
    min_size=1, max_size=8, unique=True)


class TestRingProperties:
    @given(members_st)
    @settings(max_examples=60, deadline=None)
    def test_vnode_balance(self, members):
        """With >= 128 vnodes each member owns close to its fair share
        of the ring (arc measure, not sampled keys)."""
        ring = ConsistentHashRing(members, vnodes=128)
        fair = 1.0 / len(members)
        ownership = ring.ownership()
        assert set(ownership) == set(members)
        assert abs(sum(ownership.values()) - 1.0) < 1e-9
        for fraction in ownership.values():
            assert 0.4 * fair < fraction < 1.8 * fair

    @given(members_st, st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_join_remaps_only_to_joiner(self, members, joiner):
        """Adding a member moves keys *only onto the new member* —
        no unrelated key changes hands (the consistent-hashing
        guarantee that makes shard joins cheap)."""
        ring = ConsistentHashRing(members, vnodes=64)
        keys = range(1, 501)
        before = {k: ring.lookup(k) for k in keys}
        new = ("joined", joiner)   # tuple id can't collide with members
        ring.add(new)
        for k in keys:
            after = ring.lookup(k)
            if after != before[k]:
                assert after == new
        ring.remove(new)
        assert {k: ring.lookup(k) for k in keys} == before

    @given(members_st)
    @settings(max_examples=60, deadline=None)
    def test_leave_remaps_only_leavers_keys(self, members):
        """Removing a member changes ownership only of its own keys."""
        ring = ConsistentHashRing(members, vnodes=64)
        victim = sorted(members, key=repr)[0]
        if len(members) == 1:
            return
        keys = range(1, 501)
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(victim)
        for k in keys:
            if before[k] != victim:
                assert ring.lookup(k) == before[k]
            else:
                assert ring.lookup(k) != victim

    def test_join_remap_fraction_near_fair_share(self):
        """Seeded spot check: a 5th member takes about 1/5 of the keys
        (the 'minimal remapping' half of the consistent-hashing
        contract, statistically)."""
        ring = ConsistentHashRing(range(4), vnodes=128)
        keys = list(range(1, 2001))
        before = {k: ring.lookup(k) for k in keys}
        ring.add(4)
        moved = [k for k in keys if ring.lookup(k) != before[k]]
        assert all(ring.lookup(k) == 4 for k in moved)
        assert 0.10 < len(moved) / len(keys) < 0.35

    def test_successors_distinct_and_start_at_owner(self):
        ring = ConsistentHashRing(range(5), vnodes=64)
        for key in (1, 17, 999):
            group = ring.successors(key, 3)
            assert len(group) == len(set(group)) == 3
            assert group[0] == ring.lookup(key)
        with pytest.raises(ValueError):
            ring.successors(1, 6)

    def test_duplicate_and_missing_members_raise(self):
        ring = ConsistentHashRing([1, 2])
        with pytest.raises(ValueError):
            ring.add(1)
        with pytest.raises(KeyError):
            ring.remove(3)
        with pytest.raises(KeyError):
            ConsistentHashRing().lookup(1)


class TestShardMap:
    def test_replica_groups_share_geometry_and_version_bumps(self):
        smap = ShardMap({s: 10 + s for s in range(4)}, replication=2)
        for s in range(4):
            group = smap.replica_shards(s)
            assert group[0] == s and len(set(group)) == 2
        shard, nodes = smap.route(7)
        assert nodes == smap.replica_nodes(shard)
        assert nodes[0] == 10 + shard
        v = smap.version
        smap.remove_shard(0)
        assert smap.version == v + 1
        assert 0 not in smap.shard_nodes

    def test_replication_bounds(self):
        with pytest.raises(ValueError):
            ShardMap({0: 1}, replication=2)
        with pytest.raises(ValueError):
            ShardMap({}, replication=1)


class TestLoadgenDeterminism:
    # Golden digests: any change to the arrival process, the Zipf
    # sampler, or the rank->key shuffle breaks worker-count parity of
    # every serving benchmark, so the exact bits are pinned here.
    GOLDEN_DEFAULT = ("24a484f6354c26b57a821eed9ac6d2d2"
                      "698c2e0316683e7ace6292c4fd1db5a1")
    GOLDEN_ALT = ("1458b0561331e611b41e2298f605c270"
                  "2ea541db7ba9ba5a7a15a8612b0c3dee")

    def test_golden_digest_default_config(self):
        trace = generate_trace(TraceConfig())
        assert trace_digest(trace) == self.GOLDEN_DEFAULT
        assert len(trace) == 211

    def test_golden_digest_alt_config(self):
        config = TraceConfig(rate_mops=8.0, duration_ns=10_000,
                             num_clients=1_000_000, num_keys=64,
                             zipf_s=0.9, seed=42)
        trace = generate_trace(config)
        assert trace_digest(trace) == self.GOLDEN_ALT
        assert len(trace) == 77

    def test_trace_is_pure_and_well_formed(self):
        config = TraceConfig(rate_mops=4.0, duration_ns=15_000,
                             num_clients=1_000_000, num_keys=32, seed=3)
        a, b = generate_trace(config), generate_trace(config)
        assert a == b
        arrivals = [r.arrival_ns for r in a]
        assert arrivals == sorted(arrivals)
        assert all(0 < r.arrival_ns < config.duration_ns for r in a)
        assert all(1 <= r.key <= config.num_keys for r in a)
        assert all(0 <= r.client_id < config.num_clients for r in a)
        assert [r.seq for r in a] == list(range(len(a)))

    def test_seed_changes_trace(self):
        base = TraceConfig(num_keys=32, seed=1)
        other = TraceConfig(num_keys=32, seed=2)
        assert trace_digest(generate_trace(base)) \
            != trace_digest(generate_trace(other))


class TestLogLinearHistogram:
    def test_quantiles_conservative_within_bucket_error(self):
        """Reported quantiles are >= the exact ones and within the
        documented 1/sub_buckets relative error."""
        hist = LogLinearHistogram()
        samples = [float(v) for v in range(20, 40_000, 7)]
        for v in samples:
            hist.record(v)
        samples.sort()
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = samples[math.ceil(q * len(samples)) - 1]
            reported = hist.quantile(q)
            assert reported >= exact * (1.0 - 1e-9)
            assert reported <= exact * (1 + 2.0 / hist.sub_buckets)

    def test_merge_equals_union(self):
        a, b = LogLinearHistogram(), LogLinearHistogram()
        union = LogLinearHistogram()
        for i, v in enumerate(float(x) for x in range(1, 5000, 13)):
            (a if i % 2 else b).record(v)
            union.record(v)
        a.merge(b)
        assert a.buckets == union.buckets
        assert a.count == union.count
        assert a.as_dict() == union.as_dict()

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(ValueError):
            LogLinearHistogram().merge(LogLinearHistogram(sub_buckets=8))

    def test_empty_and_invalid(self):
        hist = LogLinearHistogram()
        assert hist.p50 == 0.0 and hist.as_dict()["count"] == 0
        with pytest.raises(ValueError):
            hist.record(-1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_sub_min_values_share_bucket_zero(self):
        hist = LogLinearHistogram(min_value_ns=16.0)
        for v in (0.0, 1.0, 15.9):
            hist.record(v)
        assert hist.buckets == {0: 3}
        assert hist.p50 == 16.0


class TestZeroOpGuards:
    """Regression: stats on an idle client must not divide by zero."""

    def test_probes_per_get_zero_ops(self):
        assert KVStats().probes_per_get == 0.0

    def test_availability_zero_ops_is_vacuously_full(self):
        stats = AvailabilityStats()
        assert stats.availability == 1.0
        assert stats.as_dict()["availability"] == 1.0


CTX = 1
SEG = 64 * PAGE_SIZE


def _build(num_nodes=2, qp_size=8, doorbell_batch=1):
    from repro.node import NodeConfig
    from repro.rmc.rmc import RMCConfig
    config = ClusterConfig(
        num_nodes=num_nodes,
        node=NodeConfig(rmc=RMCConfig(doorbell_batch=doorbell_batch)))
    cluster = Cluster(config=config)
    gctx = cluster.create_global_context(CTX, SEG, qp_size=qp_size)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(num_nodes)}
    return cluster, sessions


class TestQPBatching:
    def test_post_batch_one_doorbell_all_entries_complete(self):
        cluster, sessions = _build(doorbell_batch=8)
        session = sessions[0]
        for i in range(4):
            cluster.poke_segment(1, CTX, i * 64, bytes([65 + i]) * 64)
        lbuf = session.alloc_buffer(4 * 64)

        def app(sim):
            entries = [WQEntry(op=Opcode.RREAD, dst_nid=1, offset=i * 64,
                               local_vaddr=lbuf + i * 64, length=64)
                       for i in range(4)]
            indices = yield from session.post_batch(entries)
            assert len(set(indices)) == 4
            reaped = []
            while len(reaped) < 4:
                reaped += yield from session.poll_cq_batch(8)
            return reaped

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert len(proc.value) == 4
        assert all(e.error is None for e in proc.value)
        wq = sessions[0].qp.wq
        assert wq.doorbells == 1          # the whole point of batching
        assert wq.posted_total == 4
        for i in range(4):
            assert session.buffer_peek(lbuf + i * 64, 64) \
                == bytes([65 + i]) * 64
        # The RGP picked up >1 WQ entry per doorbell poll.
        assert cluster.nodes[0].rmc.counters["wq_batched_requests"] > 0

    def test_post_batch_overflow_raises(self):
        _, sessions = _build(qp_size=4)
        session = sessions[0]
        lbuf = session.alloc_buffer(8 * 64)
        entries = [WQEntry(op=Opcode.RREAD, dst_nid=1, offset=0,
                           local_vaddr=lbuf, length=64)] * 5

        def app(sim):
            with pytest.raises(RuntimeError):
                yield from session.post_batch(entries)
            return True

        proc = session.core.sim.process(app(session.core.sim))
        session.core.sim.run()
        assert proc.value is True

    def test_unbatched_default_posts_one_doorbell_per_entry(self):
        cluster, sessions = _build()   # doorbell_batch=1 (paper default)
        session = sessions[0]
        lbuf = session.alloc_buffer(3 * 64)

        def app(sim):
            for i in range(3):
                yield from session.read_sync(1, i * 64, lbuf + i * 64, 64)

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        wq = session.qp.wq
        assert wq.doorbells == wq.posted_total == 3
        assert cluster.nodes[0].rmc.counters["wq_batched_requests"] == 0

    def test_poll_cq_batch_respects_max_reap_and_callbacks(self):
        cluster, sessions = _build(doorbell_batch=8)
        session = sessions[0]
        lbuf = session.alloc_buffer(6 * 64)
        seen = []

        def app(sim):
            entries = [WQEntry(op=Opcode.RREAD, dst_nid=1, offset=i * 64,
                               local_vaddr=lbuf + i * 64, length=64)
                       for i in range(6)]
            yield from session.post_batch(
                entries, callback=lambda e: seen.append(e.wq_index))
            first = []
            while not first:
                first = yield from session.poll_cq_batch(2)
            assert len(first) <= 2
            rest = list(first)
            while len(rest) < 6:
                rest += yield from session.poll_cq_batch(2)
            return rest

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert len(proc.value) == 6
        assert sorted(seen) == sorted(e.wq_index for e in proc.value)
