"""Integration tests targeting RMC pipeline mechanics: unrolling,
out-of-order completion, ITT back-pressure, VL deadlock freedom."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.fabric import FabricConfig
from repro.node import NodeConfig
from repro.rmc import RMCConfig
from repro.runtime import RMCSession
from repro.vm import CACHE_LINE_SIZE, PAGE_SIZE

CTX = 1
SEG = 64 * PAGE_SIZE


def build(num_nodes=2, node_config=None, fabric_config=None):
    config = ClusterConfig(num_nodes=num_nodes,
                           node=node_config or NodeConfig(),
                           fabric=fabric_config or FabricConfig())
    cluster = Cluster(config=config)
    gctx = cluster.create_global_context(CTX, SEG)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(num_nodes)}
    return cluster, sessions


class TestUnrolling:
    def test_multi_line_request_generates_one_packet_per_line(self):
        cluster, sessions = build()
        session = sessions[0]
        lbuf = session.alloc_buffer(8192)

        def app(sim):
            yield from session.read_sync(1, 0, lbuf, 8192)

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        rmc0 = cluster.nodes[0].rmc
        assert rmc0.counters["wq_requests"] == 1
        assert rmc0.counters["lines_sent"] == 128          # 8 KB / 64 B
        assert cluster.nodes[1].rmc.counters["requests_served"] == 128
        assert rmc0.counters["cq_completions"] == 1        # one CQ entry

    def test_unaligned_request_splits_at_line_grid(self):
        cluster, sessions = build()
        session = sessions[0]
        lbuf = session.alloc_buffer(4096)
        payload = bytes((i * 3) % 256 for i in range(130))
        cluster.poke_segment(1, CTX, 60, payload)

        def app(sim):
            yield from session.read_sync(1, 60, lbuf, 130)
            return session.buffer_peek(lbuf, 130)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == payload
        # [60, 190) spans lines 0,64,128: three chunks (4,64,62 bytes).
        assert cluster.nodes[0].rmc.counters["lines_sent"] == 3

    @given(offset=st.integers(min_value=0, max_value=SEG - 600),
           length=st.integers(min_value=1, max_value=512))
    @settings(max_examples=10, deadline=None)
    def test_property_arbitrary_geometry_moves_correct_bytes(self, offset,
                                                             length):
        cluster, sessions = build()
        session = sessions[0]
        lbuf = session.alloc_buffer(2048)
        payload = bytes((offset + i) % 256 for i in range(length))
        cluster.poke_segment(1, CTX, offset, payload)

        def app(sim):
            yield from session.read_sync(1, offset, lbuf, length)
            return session.buffer_peek(lbuf, length)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == payload


class TestOutOfOrderCompletion:
    def test_small_read_overtakes_large_one(self):
        """'Requests can therefore complete out of order' (§4.2): a 64 B
        read to one node, posted after an 8 KB read to another node,
        finishes first (different destinations so neither queues behind
        the other's DRAM service)."""
        cluster, sessions = build(num_nodes=3)
        session = sessions[0]
        lbuf = session.alloc_buffer(16384)
        completions = []

        def app(sim):
            yield from session.wait_for_slot()
            yield from session.read_async(
                1, 0, lbuf, 8192,
                callback=lambda cq: completions.append("large"))
            yield from session.wait_for_slot()
            yield from session.read_async(
                2, 0, lbuf + 8192, 64,
                callback=lambda cq: completions.append("small"))
            yield from session.drain_cq()

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert completions == ["small", "large"]


class TestITTBackpressure:
    def test_tiny_itt_still_completes_everything(self):
        node_config = NodeConfig(rmc=RMCConfig(itt_entries=2))
        cluster, sessions = build(node_config=node_config)
        session = sessions[0]
        lbuf = session.alloc_buffer(64 * 64)
        done = []

        def app(sim):
            for i in range(12):
                yield from session.wait_for_slot()
                yield from session.read_async(
                    1, i * 64, lbuf + i * 64, 64,
                    callback=lambda cq: done.append(cq.wq_index))
            yield from session.drain_cq()

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert len(done) == 12
        assert cluster.nodes[0].rmc.itt.peak_in_flight <= 2

    def test_itt_peak_bounded_by_capacity(self):
        node_config = NodeConfig(rmc=RMCConfig(itt_entries=4))
        cluster, sessions = build(node_config=node_config)
        session = sessions[0]
        lbuf = session.alloc_buffer(64 * 64)

        def app(sim):
            for i in range(30):
                yield from session.wait_for_slot()
                yield from session.read_async(1, i * 64, lbuf + i * 64,
                                              64, callback=lambda cq: None)
            yield from session.drain_cq()

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert 1 <= cluster.nodes[0].rmc.itt.peak_in_flight <= 4


class TestVirtualLaneDeadlockFreedom:
    def test_bidirectional_flood_with_tiny_credits_completes(self):
        """Both nodes flood each other with multi-line reads while
        credits are scarce. With a single lane, replies could block
        behind requests and deadlock; the two virtual lanes guarantee
        forward progress (§6)."""
        fabric = FabricConfig(vl_credits=2)
        cluster, sessions = build(fabric_config=fabric)
        done = []

        def flooder(sim, src, dst):
            session = sessions[src]
            lbuf = session.alloc_buffer(32 * 1024)
            for i in range(6):
                yield from session.read_sync(dst, (i % 4) * 4096,
                                             lbuf, 4096)
            done.append(src)

        cluster.sim.process(flooder(cluster.sim, 0, 1))
        cluster.sim.process(flooder(cluster.sim, 1, 0))
        cluster.run(until=50_000_000)
        assert sorted(done) == [0, 1], "flood did not complete (deadlock?)"


class TestWriteDataPathThroughRGP:
    def test_write_payload_read_from_local_memory(self):
        """RGP reads write payloads from local memory at emission time
        (§4.2) — data written into the buffer right before posting is
        what lands remotely."""
        cluster, sessions = build()
        session = sessions[0]
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            session.buffer_poke(lbuf, b"A" * 64)
            yield from session.write_sync(1, 0, lbuf, 64)
            session.buffer_poke(lbuf, b"B" * 64)
            yield from session.write_sync(1, 64, lbuf, 64)

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert cluster.peek_segment(1, CTX, 0, 64) == b"A" * 64
        assert cluster.peek_segment(1, CTX, 64, 64) == b"B" * 64
