"""Tests for the baseline models (TCP, RDMA) and the dev platform."""

import pytest

from repro.baselines import (
    RDMAConfig,
    RDMAModel,
    TCPConfig,
    TCPNetworkModel,
    build_shm_node,
    shm_node_config,
)
from repro.emulation import (
    EMU_RMC_CONFIG,
    dev_platform_cluster_config,
)


class TestTCPModel:
    def test_small_message_latency_exceeds_40us(self):
        model = TCPNetworkModel()
        assert model.one_way_latency_us(64) > 40.0

    def test_bandwidth_capped_under_2gbps(self):
        model = TCPNetworkModel()
        for size in (1024, 16384, 262144, 1 << 20):
            assert model.streaming_bandwidth_gbps(size) < 2.0

    def test_latency_monotone_in_size(self):
        model = TCPNetworkModel()
        sizes = [64 * (4 ** i) for i in range(8)]
        latencies = [model.one_way_latency_ns(s) for s in sizes]
        assert all(a <= b for a, b in zip(latencies, latencies[1:]))

    def test_bandwidth_improves_with_size_then_saturates(self):
        model = TCPNetworkModel()
        assert model.streaming_bandwidth_gbps(64) < \
            model.streaming_bandwidth_gbps(8192)

    def test_packet_count(self):
        model = TCPNetworkModel()
        assert model.packets(100) == 1
        assert model.packets(1449) == 2

    def test_invalid_size_rejected(self):
        model = TCPNetworkModel()
        with pytest.raises(ValueError):
            model.one_way_latency_ns(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TCPConfig(stack_oneway_ns=-1)
        with pytest.raises(ValueError):
            TCPConfig(mss_bytes=0)


class TestRDMAModel:
    def test_read_rtt_matches_published(self):
        model = RDMAModel()
        assert model.read_rtt_us() == pytest.approx(1.19, rel=0.05)

    def test_fetch_add_slightly_cheaper_than_read(self):
        model = RDMAModel()
        assert model.fetch_add_rtt_us() == pytest.approx(1.15, rel=0.05)
        assert model.fetch_add_rtt_ns() < model.read_rtt_ns()

    def test_bandwidth_ceiling_is_pcie_not_ib(self):
        model = RDMAModel()
        assert model.effective_bandwidth_gbps == pytest.approx(50.0)
        # The IB link alone could do 56.
        assert model.config.ib_bandwidth_gbps * 8 > 50.0

    def test_iops_scale(self):
        model = RDMAModel()
        assert model.iops_millions(cores=4, qps=4) == \
            pytest.approx(35.0, rel=0.05)
        assert model.iops_millions(cores=1, qps=1) == \
            pytest.approx(35.0 / 4, rel=0.05)

    def test_small_requests_are_op_limited(self):
        model = RDMAModel()
        assert model.bandwidth_gbps(64) < model.effective_bandwidth_gbps
        assert model.bandwidth_gbps(64 * 1024) == \
            model.effective_bandwidth_gbps

    def test_pcie_crossing_is_first_order_term(self):
        """The paper's argument: kill the PCIe terms and latency drops
        to a small multiple of DRAM."""
        base = RDMAModel()
        no_pcie = RDMAModel(RDMAConfig(post_pcie_ns=0.0, remote_dma_ns=60.0,
                                       completion_ns=0.0))
        assert no_pcie.read_rtt_ns() < base.read_rtt_ns() / 2


class TestSHMBaseline:
    def test_llc_scales_with_cores(self):
        config = shm_node_config(num_cores=8)
        assert config.memory.l2.size_bytes == 8 * 4 * 1024 * 1024
        assert config.num_cores == 8

    def test_build_runs_threads(self):
        sim, node = build_shm_node(num_cores=2)
        log = []

        def thread(core, tag):
            yield core.compute(10)
            log.append(tag)

        for i, core in enumerate(node.cores):
            core.run(thread(core, i))
        sim.run()
        assert sorted(log) == [0, 1]

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            shm_node_config(num_cores=0)


class TestDevPlatform:
    def test_emulation_config_has_software_costs(self):
        assert EMU_RMC_CONFIG.unroll_overhead_ns > 100
        assert EMU_RMC_CONFIG.rrpp_overhead_ns > 100
        assert EMU_RMC_CONFIG.rcp_overhead_ns > 50

    def test_cluster_config_shape(self):
        config = dev_platform_cluster_config(4)
        assert config.num_nodes == 4
        assert config.node.rmc.unroll_overhead_ns > 0
        assert config.fabric.link_latency_ns > 100  # NUMA-link class

    def test_dev_platform_read_latency_about_5x_hardware(self):
        from repro.workloads import remote_read_latency

        hw = remote_read_latency(sizes=(64,), iterations=5)[0].mean_ns
        dev = remote_read_latency(
            sizes=(64,), iterations=5,
            cluster_config=dev_platform_cluster_config(2))[0].mean_ns
        assert 3.0 < dev / hw < 8.0  # paper: 5x
        assert 1000 < dev < 2500     # paper: ~1.5 us

    def test_dev_platform_unrolling_dominates_large_requests(self):
        from repro.workloads import remote_read_latency

        config = dev_platform_cluster_config(2)
        rows = remote_read_latency(sizes=(64, 2048), iterations=4,
                                   cluster_config=config)
        # 32 lines of ~280ns software unroll dwarf the base latency.
        assert rows[1].mean_ns > 3 * rows[0].mean_ns
