"""Unit tests for the shm transport's building blocks: the SPSC ring
buffer (wraparound, backpressure, torn-read guard) and the fixed-layout
wire codec (roundtrips for every protocol message type).

The ring tests run on plain ``bytearray`` buffers — the ring's contract
is over any writable buffer, and staying off ``shared_memory`` keeps
them independent of platform POSIX support. The transport-level
integration (real forked workers over real shared memory) is covered by
the goldens in ``test_parallel_goldens.py``.
"""

from __future__ import annotations

import struct
import threading

import pytest

from repro.protocol import VirtualLane
from repro.sim.parallel import (MSG_CREDIT, MSG_FRAME, RemoteMessage,
                                _Final, _Hello, _Report, _RunCmd,
                                _StopCmd, decode_wire, encode_wire)
from repro.sim.ringbuf import (HEADER_BYTES, RingCorrupted, RingFull,
                               RingOverflow, SpscRing)


def make_ring(capacity=256, **kwargs):
    buf = memoryview(bytearray(HEADER_BYTES + capacity))
    return SpscRing(buf, capacity, create=True, **kwargs)


class TestRingBasics:
    def test_roundtrip(self):
        ring = make_ring()
        assert ring.push(b"hello")
        assert ring.pop() == b"hello"

    def test_fifo_order(self):
        ring = make_ring(1024)
        msgs = [bytes([i]) * (i + 1) for i in range(16)]
        for m in msgs:
            ring.push(m)
        assert [ring.pop() for _ in msgs] == msgs

    def test_empty_pop_nonblocking(self):
        assert make_ring().pop(block=False) is None

    def test_zero_length_record(self):
        ring = make_ring()
        ring.push(b"")
        assert ring.pop() == b""

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            make_ring(60)          # not a multiple of 8
        with pytest.raises(ValueError):
            make_ring(32)          # too small
        with pytest.raises(ValueError):
            SpscRing(memoryview(bytearray(64)), 256, create=True)

    def test_counters(self):
        ring = make_ring()
        ring.push(b"abc")
        ring.push(b"defgh")
        assert ring.msgs_pushed == 2
        assert ring.bytes_pushed == 8


class TestRingWraparound:
    def test_many_records_through_small_ring(self):
        """Streaming far more bytes than the capacity exercises every
        wrap alignment; contents and order must survive."""
        ring = make_ring(128)
        for i in range(500):
            msg = bytes((i + j) % 256 for j in range(i % 40))
            ring.push(msg)
            assert ring.pop() == msg

    def test_wrap_marker_path(self):
        """A record that would straddle the region end must wrap to
        offset 0 behind a wrap marker and still read back intact."""
        ring = make_ring(256)
        ring.push(b"x" * 88)       # 104-byte record
        assert ring.pop() == b"x" * 88
        ring.push(b"y" * 40)       # 56-byte record: cursor now at 160
        assert ring.pop() == b"y" * 40
        msg = bytes(range(104))    # 120-byte record > 96 bytes of room
        ring.push(msg)
        assert ring.pop() == msg

    def test_interleaved_producer_consumer_thread(self):
        """Concurrent SPSC streaming across a thread boundary with
        varied sizes (checks cursor caching + wraparound together)."""
        ring = make_ring(256)
        msgs = [bytes((i * 17 + j) % 256 for j in range(i % 50))
                for i in range(2000)]

        def produce():
            for m in msgs:
                ring.push(m, timeout=10.0)

        t = threading.Thread(target=produce)
        t.start()
        got = [ring.pop(timeout=10.0) for _ in msgs]
        t.join()
        assert got == msgs


class TestRingBackpressure:
    def test_nonblocking_push_full(self):
        ring = make_ring(64)
        assert ring.push(b"a" * 16)    # 32-byte record
        assert ring.push(b"b" * 8)     # 24-byte record: 56/64 used
        assert ring.push(b"c", block=False) is False

    def test_blocking_push_timeout(self):
        ring = make_ring(64)
        ring.push(b"a" * 16)
        ring.push(b"b" * 8)
        with pytest.raises(RingFull):
            ring.push(b"c", timeout=0.05)

    def test_push_resumes_after_pop(self):
        ring = make_ring(64)
        ring.push(b"a" * 16)
        ring.push(b"b" * 8)
        assert ring.push(b"c", block=False) is False
        assert ring.pop() == b"a" * 16
        assert ring.push(b"c", block=False)
        assert ring.pop() == b"b" * 8
        assert ring.pop() == b"c"

    def test_overflow_record_rejected(self):
        """A single record above half the capacity could deadlock
        against the wrap skip, so it must be rejected outright."""
        ring = make_ring(128)
        with pytest.raises(RingOverflow):
            ring.push(b"x" * 64)
        # Right at the cap (16B header + 48B payload = 64 = 128//2): ok.
        ring.push(b"x" * 48)
        assert ring.pop() == b"x" * 48


class TestRingTornReadGuard:
    """The consumer must never hand over a half-visible record: an
    out-of-sequence header or a CRC-mismatched payload is re-read with
    bounded patience, and only a *persistent* mismatch (a real framing
    bug, emulated here by corrupting the buffer) raises."""

    def test_corrupt_payload_raises(self):
        ring = make_ring(stale_timeout_s=0.05)
        ring.push(b"payload-bytes")
        ring._buf[HEADER_BYTES + 16] ^= 0xFF    # flip a payload byte
        with pytest.raises(RingCorrupted):
            ring.pop()

    def test_out_of_sequence_header_raises(self):
        ring = make_ring(stale_timeout_s=0.05)
        ring.push(b"first")
        ring.push(b"second")
        assert ring.pop() == b"first"
        # Corrupt the second record's seq word (u32 at record base + 4).
        first_rec = 16 + len(b"first")
        first_rec += (-first_rec) % 8
        struct.pack_into("<I", ring._buf,
                         HEADER_BYTES + first_rec + 4, 999)
        with pytest.raises(RingCorrupted):
            ring.pop()

    def test_misframed_size_raises(self):
        ring = make_ring(stale_timeout_s=0.05)
        ring.push(b"abc")
        # A size word larger than the remaining room can only be a torn
        # or corrupt header, never a published record.
        struct.pack_into("<I", ring._buf, HEADER_BYTES, 1 << 20)
        with pytest.raises(RingCorrupted):
            ring.pop()


def _credit(i=0, arrival=1000.5):
    return RemoteMessage(arrival=arrival, dst_rank=1,
                         key=(2, 0, 1, 7, i), kind=MSG_CREDIT,
                         payload=(0, 1, VirtualLane.REQUEST, i))


class TestWireCodec:
    def test_report_roundtrip(self):
        report = _Report(outbox=tuple(_credit(i) for i in range(3)),
                         next_event=123.25, pending=5, obligations=True,
                         last_real=99.5)
        assert decode_wire(encode_wire(report)) == report

    def test_report_none_last_real(self):
        report = _Report(outbox=(), next_event=float("inf"), pending=0,
                         obligations=False, last_real=None)
        assert decode_wire(encode_wire(report)) == report

    def test_frame_message_roundtrip(self):
        frame = RemoteMessage(arrival=55.0, dst_rank=0,
                              key=(1, 2, 3, 4, 5), kind=MSG_FRAME,
                              payload={"opaque": ["frame", 1]})
        run = _RunCmd(bound=200.0, msgs=(frame, _credit()), eager=50.0)
        assert decode_wire(encode_wire(run)) == run

    def test_nonconforming_message_falls_back_to_pickle(self):
        """A message whose key does not fit the fixed 5-int layout must
        still survive via the pickled-fallback message kind."""
        odd = RemoteMessage(arrival=7.0, dst_rank=0,
                            key=("string", "key"), kind=MSG_CREDIT,
                            payload=(0, 1, VirtualLane.REQUEST, 0))
        run = _RunCmd(bound=1.0, msgs=(odd,))
        assert decode_wire(encode_wire(run)) == run

    def test_hello_stop_final_roundtrip(self):
        hello = _Hello(frame_lookahead_ns=50.0, credit_lookahead_ns=25.0)
        assert decode_wire(encode_wire(hello)) == hello
        stop = _StopCmd(final_time=1234.5)
        assert decode_wire(encode_wire(stop)) == stop
        final = _Final(result={"x": 1}, events_processed=42, wall_s=0.5,
                       stats={"busy_s": 0.25})
        assert decode_wire(encode_wire(final)) == final

    def test_codec_through_ring(self):
        """The two layers composed, as the transport uses them."""
        ring = make_ring(4096)
        report = _Report(outbox=tuple(_credit(i) for i in range(4)),
                         next_event=1.5, pending=1, obligations=True,
                         last_real=None)
        ring.push(encode_wire(report))
        assert decode_wire(ring.pop()) == report
