"""Semantic parity of the baseline transports with the soNUMA fabric.

The failover story only holds if switching channels never changes the
*answer* — a backend is a latency/availability trade, not a different
memory. One seeded op trace is replayed through the real fabric
(:class:`SonumaTransport` over an :class:`RMCSession`) and through each
analytical baseline (:class:`RDMATransport`, :class:`TCPTransport`,
:class:`LocalMirrorTransport` over a :class:`MemoryStore`); every
backend must return the identical read sequence and leave the identical
final bytes, while their measured RTTs keep the paper's ordering
(soNUMA < RDMA < TCP).
"""

import random

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession
from repro.transport import (
    MemoryStore,
    SonumaTransport,
    build_transport,
)
from repro.vm import PAGE_SIZE

CTX = 5
NUM_OPS = 160
OP_BYTES = 64
REGION = 4096
PEERS = (1, 2)
BASELINES = ("rdma", "tcp", "shm")


def _seed_bytes(nid: int) -> bytes:
    rng = random.Random(1000 + nid)
    return bytes(rng.randrange(256) for _ in range(REGION))


def _trace(seed: int = 11):
    """The shared op trace: mixed reads/writes, offsets aligned so ops
    never straddle the region end."""
    rng = random.Random(seed)
    ops = []
    for i in range(NUM_OPS):
        kind = "write" if rng.random() < 0.375 else "read"
        nid = rng.choice(PEERS)
        offset = rng.randrange(REGION // OP_BYTES) * OP_BYTES
        if kind == "write":
            payload = bytes((i + j) & 0xFF for j in range(OP_BYTES))
            ops.append((kind, nid, offset, payload))
        else:
            ops.append((kind, nid, offset, None))
    return ops


def _drive(sim, transport, ops, outcome):
    reads = []
    rtts = []
    for kind, nid, offset, payload in ops:
        start = sim.now
        if kind == "write":
            yield from transport.write(nid, offset, payload)
        else:
            reads.append((yield from transport.read(nid, offset,
                                                    OP_BYTES)))
        rtts.append(sim.now - start)
    outcome["reads"] = reads
    outcome["mean_rtt"] = sum(rtts) / len(rtts)


def _run_sonuma(ops):
    cluster = Cluster(config=ClusterConfig(num_nodes=3))
    gctx = cluster.create_global_context(CTX, 4 * PAGE_SIZE)
    for nid in PEERS:
        cluster.poke_segment(nid, CTX, 0, _seed_bytes(nid))
    session = RMCSession(cluster.nodes[0].core, gctx.qp(0), gctx.entry(0))
    transport = SonumaTransport(session, max_op_bytes=OP_BYTES)
    outcome = {}
    cluster.sim.process(_drive(cluster.sim, transport, ops, outcome))
    cluster.run(until=1_000_000_000)
    outcome["final"] = {nid: cluster.peek_segment(nid, CTX, 0, REGION)
                        for nid in PEERS}
    return outcome


def _run_model(name, ops):
    from repro.sim import Simulator

    sim = Simulator()
    store = MemoryStore()
    for nid in PEERS:
        store.write(nid, 0, _seed_bytes(nid))
    transport = build_transport(name, sim, store, seed=0)
    outcome = {}
    sim.process(_drive(sim, transport, ops, outcome))
    sim.run()
    outcome["final"] = {nid: bytes(store.read(nid, 0, REGION))
                       for nid in PEERS}
    return outcome


class TestBaselineParity:
    def test_identical_reads_and_final_bytes_on_every_backend(self):
        ops = _trace()
        results = {"sonuma": _run_sonuma(ops)}
        for name in BASELINES:
            results[name] = _run_model(name, ops)

        reference = results["sonuma"]
        assert len(reference["reads"]) == sum(
            1 for op in ops if op[0] == "read")
        for name in BASELINES:
            assert results[name]["reads"] == reference["reads"], name
            assert results[name]["final"] == reference["final"], name

    def test_rtt_ordering_matches_the_paper(self):
        """Fig. 1 / Table 2: the fabric beats RDMA beats TCP; the local
        mirror undercuts everything (it never leaves the node)."""
        ops = _trace()
        rtt = {"sonuma": _run_sonuma(ops)["mean_rtt"]}
        for name in BASELINES:
            rtt[name] = _run_model(name, ops)["mean_rtt"]
        assert rtt["sonuma"] < rtt["rdma"] < rtt["tcp"]
        assert rtt["shm"] < rtt["sonuma"]

    def test_model_transports_replay_bit_identically(self):
        """Same seed, same trace -> byte-identical reads *and* identical
        modeled latency (the jitter stream is part of the contract)."""
        ops = _trace()
        for name in BASELINES:
            first = _run_model(name, ops)
            again = _run_model(name, ops)
            assert again["reads"] == first["reads"]
            assert again["final"] == first["final"]
            assert again["mean_rtt"] == first["mean_rtt"]
