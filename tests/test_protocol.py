"""Unit tests for the wire-protocol packet definitions."""

import pytest

from repro.protocol import (
    HEADER_BYTES,
    MTU_BYTES,
    Opcode,
    ReplyPacket,
    ReplyStatus,
    RequestPacket,
    VirtualLane,
    packet_size,
)
from repro.vm import CACHE_LINE_SIZE


class TestPacketSizes:
    def test_header_only(self):
        assert packet_size(0) == HEADER_BYTES

    def test_full_line(self):
        assert packet_size(CACHE_LINE_SIZE) == MTU_BYTES

    def test_payload_exceeding_mtu_rejected(self):
        with pytest.raises(ValueError):
            packet_size(CACHE_LINE_SIZE + 1)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            packet_size(-1)


class TestRequestPacket:
    def test_read_request_is_header_only(self):
        req = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                            ctx_id=1, offset=0, tid=0)
        assert req.size_bytes == HEADER_BYTES
        assert req.vl is VirtualLane.REQUEST

    def test_write_request_carries_payload(self):
        req = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RWRITE,
                            ctx_id=1, offset=0, tid=0,
                            length=64, payload=b"\x00" * 64)
        assert req.size_bytes == MTU_BYTES

    def test_write_payload_length_must_match(self):
        with pytest.raises(ValueError):
            RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RWRITE,
                          ctx_id=1, offset=0, tid=0,
                          length=64, payload=b"\x00" * 32)

    def test_write_requires_payload(self):
        with pytest.raises(ValueError):
            RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RWRITE,
                          ctx_id=1, offset=0, tid=0)

    def test_length_bounded_by_cache_line(self):
        with pytest.raises(ValueError):
            RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                          ctx_id=1, offset=0, tid=0, length=128)

    def test_fetch_add_requires_operand(self):
        with pytest.raises(ValueError):
            RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RFETCH_ADD,
                          ctx_id=1, offset=0, tid=0, length=8)
        ok = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RFETCH_ADD,
                           ctx_id=1, offset=0, tid=0, length=8, operand=5)
        assert ok.operand == 5

    def test_cas_requires_compare_and_swap(self):
        with pytest.raises(ValueError):
            RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RCOMP_SWAP,
                          ctx_id=1, offset=0, tid=0, length=8, operand=1)


class TestReplyPacket:
    def test_reply_lane_and_status(self):
        rep = ReplyPacket(dst_nid=0, src_nid=1, tid=3, offset=0)
        assert rep.vl is VirtualLane.REPLY
        assert rep.status is ReplyStatus.OK

    def test_read_reply_carries_line(self):
        rep = ReplyPacket(dst_nid=0, src_nid=1, tid=3, offset=0,
                          payload=b"\x01" * 64)
        assert rep.size_bytes == MTU_BYTES

    def test_error_reply_is_header_only(self):
        rep = ReplyPacket(dst_nid=0, src_nid=1, tid=3, offset=0,
                          status=ReplyStatus.SEGMENT_VIOLATION)
        assert rep.size_bytes == HEADER_BYTES
