"""Tests for the §8 remote-notification extension (RNOTIFY)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RemoteOpError, RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 64 * PAGE_SIZE  # large enough for Messenger comm state too


def build(num_nodes=2):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    gctx = cluster.create_global_context(CTX, SEG)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(num_nodes)}
    return cluster, sessions


class TestNotify:
    def test_notification_delivers_payload_without_polling(self):
        cluster, sessions = build()
        queue = cluster.nodes[1].driver.enable_notifications()
        received = []

        def receiver(sim):
            # Blocks with zero polling activity until the interrupt.
            notification = yield from queue.wait()
            received.append((sim.now, notification))

        def sender(sim):
            yield sim.timeout(5000)  # receiver is idle this whole time
            lbuf = sessions[0].alloc_buffer(4096)
            sessions[0].buffer_poke(lbuf, b"wake up!")
            yield from sessions[0].notify_sync(1, lbuf, 8)

        cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert len(received) == 1
        at, notification = received[0]
        assert notification.payload == b"wake up!"
        assert notification.src_nid == 0
        assert at > 5000  # delivered after the sender acted
        assert queue.delivered == 1

    def test_interrupt_cost_charged(self):
        cluster, sessions = build()
        queue = cluster.nodes[1].driver.enable_notifications(
            interrupt_cost_ns=2000.0)
        wake_time = []

        def receiver(sim):
            yield from queue.wait()
            wake_time.append(sim.now)

        def sender(sim):
            lbuf = sessions[0].alloc_buffer(4096)
            sessions[0].buffer_poke(lbuf, b"x")
            yield from sessions[0].notify_sync(1, lbuf, 1)

        cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        # The wake includes the interrupt delivery cost.
        assert wake_time[0] > 2000.0

    def test_notify_without_handler_rejected(self):
        cluster, sessions = build()

        def sender(sim):
            lbuf = sessions[0].alloc_buffer(4096)
            with pytest.raises(RemoteOpError, match="notify_rejected"):
                yield from sessions[0].notify_sync(1, lbuf, 8)
            return True

        proc = cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert proc.value is True
        assert cluster.nodes[1].rmc.counters["notifications_rejected"] == 1

    def test_full_queue_rejects_stateless(self):
        cluster, sessions = build()
        queue = cluster.nodes[1].driver.enable_notifications(capacity=2)

        def sender(sim):
            lbuf = sessions[0].alloc_buffer(4096)
            sessions[0].buffer_poke(lbuf, b"n")
            yield from sessions[0].notify_sync(1, lbuf, 1)
            yield from sessions[0].notify_sync(1, lbuf, 1)
            with pytest.raises(RemoteOpError, match="notify_rejected"):
                yield from sessions[0].notify_sync(1, lbuf, 1)
            return True

        proc = cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert proc.value is True
        assert queue.dropped == 1
        assert len(queue) == 2  # the accepted two are still queued

    def test_many_notifications_fifo(self):
        cluster, sessions = build()
        queue = cluster.nodes[1].driver.enable_notifications()
        received = []

        def receiver(sim):
            for _ in range(5):
                notification = yield from queue.wait()
                received.append(notification.payload)

        def sender(sim):
            lbuf = sessions[0].alloc_buffer(4096)
            for i in range(5):
                sessions[0].buffer_poke(lbuf, bytes([i]))
                yield from sessions[0].notify_sync(1, lbuf, 1)

        cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()
        assert received == [bytes([i]) for i in range(5)]

    def test_oversized_notification_rejected_locally(self):
        from repro.protocol import Opcode
        from repro.rmc import WQEntry

        with pytest.raises(ValueError, match="at most one line"):
            WQEntry(op=Opcode.RNOTIFY, dst_nid=1, offset=0,
                    local_vaddr=0, length=128)

    def test_notification_latency_vs_polling(self):
        """Notification wake costs the interrupt path; a polling
        receiver reacts faster — the §8 tradeoff, quantified."""
        # Interrupt-driven receive.
        cluster, sessions = build()
        queue = cluster.nodes[1].driver.enable_notifications()
        times = {}

        def receiver(sim):
            notification = yield from queue.wait()
            times["interrupt"] = sim.now

        def sender(sim):
            lbuf = sessions[0].alloc_buffer(4096)
            sessions[0].buffer_poke(lbuf, b"z")
            yield from sessions[0].notify_sync(1, lbuf, 1)

        cluster.sim.process(receiver(cluster.sim))
        cluster.sim.process(sender(cluster.sim))
        cluster.run()

        # Polling receive of a plain remote write of the same size.
        from repro.runtime import Messenger

        cluster2, sessions2 = build()
        msgr0 = Messenger(sessions2[0], 0, 2)
        msgr1 = Messenger(sessions2[1], 1, 2)

        def poll_receiver(sim):
            yield from msgr1.recv(0)
            times["polling"] = sim.now

        def poll_sender(sim):
            yield from msgr0.send(1, b"z")

        cluster2.sim.process(poll_receiver(cluster2.sim))
        cluster2.sim.process(poll_sender(cluster2.sim))
        cluster2.run()

        assert times["polling"] < times["interrupt"]
