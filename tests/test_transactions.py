"""Tests for distributed transactions over remote atomics."""

import pytest

from repro.apps.transactions import (
    ACCOUNT_BYTES,
    AccountStore,
    TransactionClient,
    run_transfer_mix,
)
from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession


def build(num_nodes=3, accounts_per_node=4):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    cluster.create_global_context(
        1, accounts_per_node * ACCOUNT_BYTES + (1 << 20))
    store = AccountStore(cluster, accounts_per_node)
    return cluster, store


def make_client(cluster, store, node_id, tag):
    node = cluster.nodes[node_id]
    entry = node.driver.contexts[1]
    qp = node.driver.create_qp(1)
    session = RMCSession(node.core, qp, entry)
    return TransactionClient(session, store, client_tag=tag)


class TestSingleTransfer:
    def test_transfer_moves_money(self):
        cluster, store = build()
        client = make_client(cluster, store, 0, tag=1)

        def app(sim):
            return (yield from client.transfer(0, 7, 250))

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is True
        assert store.balance(0) == 750
        assert store.balance(7) == 1250
        assert store.locks_held() == 0

    def test_insufficient_funds_aborts(self):
        cluster, store = build()
        client = make_client(cluster, store, 0, tag=1)

        def app(sim):
            return (yield from client.transfer(0, 1, 10_000))

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is False
        assert store.balance(0) == 1000
        assert store.balance(1) == 1000
        assert client.stats.committed == 0

    def test_same_account_rejected(self):
        cluster, store = build()
        client = make_client(cluster, store, 0, tag=1)

        def app(sim):
            with pytest.raises(ValueError):
                yield from client.transfer(3, 3, 1)
            return True

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is True


class TestConcurrency:
    def test_conservation_under_concurrent_transfers(self):
        """The headline invariant: no interleaving creates or destroys
        money, and all locks are released at quiescence."""
        store, clients = run_transfer_mix(num_nodes=4,
                                          accounts_per_node=6,
                                          clients=3, transfers_each=15)
        assert store.total_balance() == store.num_accounts * 1000
        assert store.locks_held() == 0
        assert sum(c.stats.committed for c in clients) > 0

    def test_contended_account_serializes_via_cas(self):
        """Two clients hammer the same pair: CAS arbitration must
        serialize them (retries happen, money conserved)."""
        cluster, store = build(num_nodes=2, accounts_per_node=2)
        a = make_client(cluster, store, 0, tag=1)
        b = make_client(cluster, store, 1, tag=2)

        def loop(sim, client, src, dst):
            for _ in range(10):
                yield from client.transfer(src, dst, 10)

        cluster.sim.process(loop(cluster.sim, a, 0, 3))
        cluster.sim.process(loop(cluster.sim, b, 3, 0))
        cluster.run()
        assert store.total_balance() == 4 * 1000
        assert store.locks_held() == 0
        assert a.stats.committed == 10
        assert b.stats.committed == 10

    def test_ordered_locking_no_deadlock_on_reverse_pairs(self):
        """Client A transfers x->y while B transfers y->x in a loop:
        without ordered acquisition this is the classic deadlock; the
        run must complete."""
        cluster, store = build(num_nodes=2, accounts_per_node=2)
        a = make_client(cluster, store, 0, tag=1)
        b = make_client(cluster, store, 1, tag=2)
        done = []

        def loop(sim, client, src, dst, tag):
            for _ in range(8):
                yield from client.transfer(src, dst, 5)
            done.append(tag)

        cluster.sim.process(loop(cluster.sim, a, 1, 2, "a"))
        cluster.sim.process(loop(cluster.sim, b, 2, 1, "b"))
        cluster.run(until=1_000_000_000)
        assert sorted(done) == ["a", "b"], "transfer loops deadlocked"

    def test_tag_zero_reserved(self):
        cluster, store = build()
        with pytest.raises(ValueError):
            make_client(cluster, store, 0, tag=0)


class TestStore:
    def test_locate_partitions_by_node(self):
        cluster, store = build(num_nodes=3, accounts_per_node=4)
        assert store.locate(0) == (0, 0)
        assert store.locate(4) == (1, 0)
        assert store.locate(11) == (2, 3 * ACCOUNT_BYTES)
        with pytest.raises(IndexError):
            store.locate(12)

    def test_initial_balances(self):
        _cluster, store = build(num_nodes=2, accounts_per_node=3)
        assert store.total_balance() == 6 * 1000
        assert store.locks_held() == 0
