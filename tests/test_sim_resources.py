"""Unit tests for Store / Resource / Channel queueing primitives."""

import pytest

from repro.sim import Channel, Resource, Simulator, Store


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer(sim):
            for i in range(5):
                yield sim.timeout(1)
                store.put(i)

        def consumer(sim):
            for _ in range(5):
                item = yield store.get()
                received.append(item)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        times = []

        def consumer(sim):
            item = yield store.get()
            times.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(30)
            store.put("late")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert times == [(30.0, "late")]

    def test_capacity_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer(sim):
            yield store.put("a")
            log.append(("a-accepted", sim.now))
            yield store.put("b")
            log.append(("b-accepted", sim.now))

        def consumer(sim):
            yield sim.timeout(10)
            item = yield store.get()
            log.append((f"got-{item}", sim.now))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert ("a-accepted", 0.0) in log
        assert ("b-accepted", 10.0) in log  # admitted when "a" was drained

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.is_full

    def test_try_get_empty(self):
        sim = Simulator()
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None

    def test_peak_occupancy_tracked(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(7):
            store.try_put(i)
        assert store.peak_occupancy == 7
        assert store.total_puts == 7

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestResource:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        order = []

        def worker(sim, tag, hold):
            yield res.acquire()
            order.append((tag, "in", sim.now))
            yield sim.timeout(hold)
            res.release()
            order.append((tag, "out", sim.now))

        sim.process(worker(sim, "a", 10))
        sim.process(worker(sim, "b", 10))
        sim.process(worker(sim, "c", 10))
        sim.run()
        # a and b enter at t=0; c must wait until one releases at t=10.
        entries = {tag: t for tag, what, t in order if what == "in"}
        assert entries["a"] == 0.0
        assert entries["b"] == 0.0
        assert entries["c"] == 10.0
        assert res.peak_in_use == 2

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_try_acquire(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        assert res.try_acquire()
        assert not res.try_acquire()
        res.release()
        assert res.try_acquire()

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        grants = []

        def worker(sim, tag):
            yield res.acquire()
            grants.append(tag)
            yield sim.timeout(1)
            res.release()

        for tag in range(5):
            sim.process(worker(sim, tag))
        sim.run()
        assert grants == [0, 1, 2, 3, 4]


class TestChannel:
    def test_latency_only(self):
        sim = Simulator()
        chan = Channel(sim, latency=50.0)
        arrivals = []

        def sender(sim):
            chan.put("x")
            yield sim.timeout(0)

        def receiver(sim):
            item = yield chan.get()
            arrivals.append((sim.now, item))

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert arrivals == [(50.0, "x")]

    def test_serialization_delay(self):
        # 1 byte/ns bandwidth: a 100-byte item takes 100 ns to serialize
        # plus 50 ns propagation.
        sim = Simulator()
        chan = Channel(sim, latency=50.0, bandwidth=1.0)
        arrivals = []

        def sender(sim):
            chan.put("a", size=100)
            chan.put("b", size=100)
            yield sim.timeout(0)

        def receiver(sim):
            for _ in range(2):
                item = yield chan.get()
                arrivals.append((sim.now, item))

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert arrivals[0] == (150.0, "a")
        # "b" waits for the line: starts at 100, arrives at 250.
        assert arrivals[1] == (250.0, "b")

    def test_bytes_accounting(self):
        sim = Simulator()
        chan = Channel(sim, latency=1.0, bandwidth=10.0)
        chan.put("p", size=64)
        chan.put("q", size=64)
        sim.run()
        assert chan.bytes_sent == 128


class TestStats:
    def test_latency_percentiles(self):
        from repro.sim import LatencyStat

        stat = LatencyStat()
        for v in range(1, 101):
            stat.record(float(v))
        assert stat.mean == pytest.approx(50.5)
        assert stat.p50 == pytest.approx(50.5)
        assert stat.percentile(0) == 1.0
        assert stat.percentile(100) == 100.0
        assert stat.minimum == 1.0 and stat.maximum == 100.0

    def test_latency_rejects_negative(self):
        from repro.sim import LatencyStat

        stat = LatencyStat()
        with pytest.raises(ValueError):
            stat.record(-1.0)

    def test_throughput_meter_units(self):
        from repro.sim import ThroughputMeter

        meter = ThroughputMeter()
        meter.start(0.0)
        meter.record(1000, ops=10)
        meter.stop(1000.0)  # 1000 bytes over 1000 ns = 1 B/ns = 8 Gbps
        assert meter.gbps() == pytest.approx(8.0)
        assert meter.gbytes_per_sec() == pytest.approx(1.0)
        assert meter.mops() == pytest.approx(10.0)

    def test_histogram_mode(self):
        from repro.sim import Histogram

        hist = Histogram(bucket_width=10.0)
        for v in [1, 2, 3, 15, 16, 17, 18, 25]:
            hist.record(v)
        assert hist.mode_bucket() == (10.0, 20.0)
        assert hist.cumulative_fraction_below(10.0) == pytest.approx(3 / 8)
