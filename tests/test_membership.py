"""Cluster membership: leases, epochs, incarnation fencing (§5.1).

The membership service turns the driver-level RPING heartbeat into a
single-domain control plane: lease expiry evicts a node (bumping the
cluster epoch and fencing the dead incarnation on every surviving NI),
resumed pongs or an explicit restart rejoin it under a fresh
incarnation. These tests pin down the transition discipline — exactly
one callback per state change, no matter how many detectors fire — and
the NI-level fence that keeps a dead node's stragglers out of CQs.
"""

import pytest

from repro import telemetry
from repro.cluster import Cluster, ClusterConfig
from repro.protocol import ReplyPacket

CTX = 1

INTERVAL = 2_000.0
LEASE = 6_000.0


def build(num_nodes=3, on_evict=None, on_rejoin=None):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    membership = cluster.enable_membership(interval_ns=INTERVAL,
                                           lease_ns=LEASE,
                                           on_evict=on_evict,
                                           on_rejoin=on_rejoin)
    controller = cluster.fault_controller(seed=0)
    return cluster, membership, controller


def keep_alive(cluster, until):
    """Heartbeat sleeps are daemon events — they never keep the
    simulation alive on their own. Membership tests have no application
    running, so pin the clock forward with a non-daemon ticker."""
    def ticker(sim):
        while sim.now < until:
            yield sim.timeout(INTERVAL)
    cluster.sim.process(ticker(cluster.sim), name="keepalive")


class TestEvictionAndRejoin:
    def test_crash_evicts_within_lease_and_bumps_epoch(self):
        cluster, membership, controller = build()
        epoch_before = membership.epoch
        controller.schedule_crash(1, at_ns=5_000.0)
        keep_alive(cluster, 5_000.0 + 3 * LEASE)
        cluster.run(until=5_000.0 + 3 * LEASE)
        assert not membership.is_live(1)
        assert membership.live_members() == [0, 2]
        assert membership.epoch == epoch_before + 1
        assert membership.evictions == 1
        # The fence is armed on every survivor: frames from the dead
        # incarnation can no longer be delivered.
        fenced = membership.members[1].fenced_below
        assert fenced == membership.incarnation_of(1) + 1
        for nid in (0, 2):
            ni = cluster.nodes[nid].ni
            stale = ReplyPacket(dst_nid=nid, src_nid=1, tid=0, offset=0,
                                epoch=fenced - 1)
            ni.deliver(stale)
            assert ni.epoch_fenced >= 1

    def test_restart_rejoins_with_fresh_incarnation(self):
        cluster, membership, controller = build()
        first_inc = membership.incarnation_of(1)
        controller.schedule_crash(1, at_ns=5_000.0, restart_after_ns=30_000.0)
        keep_alive(cluster, 100_000.0)
        cluster.run(until=100_000.0)
        assert membership.is_live(1)
        assert membership.rejoins == 1
        assert membership.incarnation_of(1) == first_inc + 1
        assert membership.mttr_ns > 0
        # Reflected in cluster telemetry.
        snap = telemetry.snapshot(cluster)
        assert snap.membership_stats["evictions"] == 1
        assert snap.membership_stats["rejoins"] == 1
        assert snap.membership_stats["live_members"] == 3

    def test_repeated_flaps_fire_exactly_one_callback_per_transition(self):
        """A gray node flapping up and down must produce exactly one
        eviction and one rejoin per transition — even though *every*
        survivor's detector reports the same lease expiry / recovery,
        and keeps reporting it while the state persists."""
        evicted, rejoined = [], []
        cluster, membership, controller = build(
            on_evict=lambda nid, epoch: evicted.append((nid, epoch)),
            on_rejoin=lambda nid, epoch: rejoined.append((nid, epoch)))
        flaps = 3

        def script(sim):
            for _ in range(flaps):
                controller.gray_fail(1)
                yield sim.timeout(4 * LEASE)    # well past expiry
                controller.gray_restore(1)
                yield sim.timeout(4 * LEASE)    # well past recovery

        cluster.sim.process(script(cluster.sim))
        cluster.run(until=flaps * 8 * LEASE + 10_000.0)
        assert [nid for nid, _ in evicted] == [1] * flaps
        assert [nid for nid, _ in rejoined] == [1] * flaps
        # Each transition bumped the epoch exactly once; the callback
        # epochs are strictly increasing with no duplicates.
        epochs = [e for _, e in evicted] + [e for _, e in rejoined]
        assert len(set(epochs)) == len(epochs)
        assert membership.is_live(1)
        # Every rejoin re-incarnated the node past its fence.
        assert membership.incarnation_of(1) == 1 + flaps


class TestIncarnationFence:
    def _ni(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        return cluster.nodes[0].ni

    def test_stale_incarnation_frames_dropped_newer_pass(self):
        ni = self._ni()
        ni.fence_peer(1, 2)
        stale = ReplyPacket(dst_nid=0, src_nid=1, tid=0, offset=0, epoch=1)
        ni.deliver(stale)
        assert ni.epoch_fenced == 1
        assert ni.packets_received == 0
        fresh = ReplyPacket(dst_nid=0, src_nid=1, tid=0, offset=0, epoch=2)
        ni.deliver(fresh)
        assert ni.packets_received == 1

    def test_newer_epoch_resets_dedup_window(self):
        """A reborn node restarts its link sequence numbers at zero; the
        receiver must not mistake its first frames for duplicates of the
        previous incarnation's."""
        ni = self._ni()
        first = ReplyPacket(dst_nid=0, src_nid=1, tid=0, offset=0,
                            epoch=1, seq=0)
        ni.deliver(first)
        dup = ReplyPacket(dst_nid=0, src_nid=1, tid=0, offset=0,
                          epoch=1, seq=0)
        ni.deliver(dup)
        assert ni.duplicates_dropped == 1
        reborn = ReplyPacket(dst_nid=0, src_nid=1, tid=0, offset=0,
                             epoch=2, seq=0)
        ni.deliver(reborn)
        assert ni.duplicates_dropped == 1      # not a duplicate
        assert ni.packets_received == 2

    def test_fence_is_monotonic(self):
        ni = self._ni()
        ni.fence_peer(1, 3)
        ni.fence_peer(1, 2)    # lower fence must not unfence
        pkt = ReplyPacket(dst_nid=0, src_nid=1, tid=0, offset=0, epoch=2)
        ni.deliver(pkt)
        assert ni.epoch_fenced == 1
