"""Mid-trace shard-map rebalancing (serving tier membership changes).

Drives :meth:`ShardMap.add_shard` / :meth:`ShardMap.remove_shard`
between serving phases of one simulation: a shard joins mid-trace (its
arcs — and only its arcs — remap to it), GETs keep verifying against
the expected values through both transitions, and removing the shard
restores the exact pre-add placement (consistent hashing is
history-free: the surviving tokens never moved).
"""

from repro.apps.kvstore import BUCKET_BYTES, _bucket_index, _unpack_bucket
from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession
from repro.serving.harness import _build_table
from repro.serving.hashring import ShardMap
from repro.serving.loadgen import value_of_key
from repro.vm import PAGE_SIZE

CTX = 6
NUM_KEYS = 96
NUM_BUCKETS = 256
MAX_PROBES = 16
REGION = NUM_BUCKETS * BUCKET_BYTES


class TestMidTraceRebalance:
    def _expected(self):
        return {k: value_of_key(k) for k in range(1, NUM_KEYS + 1)}

    def test_add_then_remove_shard_mid_trace(self):
        # Start with shards {0,1,2} on nodes {1,2,3}; shard 3 (node 4)
        # joins mid-trace and leaves again.
        shard_map = ShardMap({s: 1 + s for s in range(3)}, vnodes=64)
        expected = self._expected()
        before = {k: shard_map.shard_of(k) for k in expected}

        # Placement facts first (pure ShardMap behavior): the join
        # steals only its own arcs, the leave restores them exactly.
        shard_map.add_shard(3, node=4)
        after_add = {k: shard_map.shard_of(k) for k in expected}
        moved = [k for k in expected if after_add[k] != before[k]]
        assert moved, "a joining shard should own some keys"
        assert all(after_add[k] == 3 for k in moved)  # minimal remap
        assert shard_map.version == 1
        assert shard_map.replica_nodes(3) == [4]
        shard_map.remove_shard(3)
        assert {k: shard_map.shard_of(k) for k in expected} == before
        assert shard_map.version == 2

        # Now the same transitions mid-trace, against real segments.
        # Nodes 1..3 hold their phase-A tables (stale entries for keys
        # that temporarily move to shard 3 are fine — nothing routes
        # there while shard 3 owns them); node 4 holds exactly the keys
        # it will own after the join.
        cluster = Cluster(config=ClusterConfig(num_nodes=5))
        segment = -(-4 * REGION // PAGE_SIZE) * PAGE_SIZE
        gctx = cluster.create_global_context(CTX, segment)
        keyset = {s: {} for s in range(3)}
        for k, v in expected.items():
            keyset[before[k]][k] = v
        for s in range(3):
            cluster.poke_segment(
                1 + s, CTX, s * REGION,
                _build_table(keyset[s], NUM_BUCKETS, MAX_PROBES))
        joining = {k: expected[k] for k in moved}
        cluster.poke_segment(
            4, CTX, 3 * REGION,
            _build_table(joining, NUM_BUCKETS, MAX_PROBES))

        session = RMCSession(cluster.nodes[0].core, gctx.qp(0),
                             gctx.entry(0))
        scratch = session.alloc_buffer(BUCKET_BYTES)
        outcome = {"wrong": 0, "gets": 0, "versions": []}

        def get(key):
            shard, nodes = shard_map.route(key)
            base = shard * REGION
            for probe in range(MAX_PROBES):
                slot = (_bucket_index(key, NUM_BUCKETS) + probe) \
                    % NUM_BUCKETS
                yield from session.read_sync(
                    nodes[0], base + slot * BUCKET_BYTES, scratch,
                    BUCKET_BYTES)
                found, value = _unpack_bucket(
                    session.buffer_peek(scratch, BUCKET_BYTES))
                if found == key:
                    return value
                if found == 0:
                    return None
            return None

        def phase(keys):
            for key in keys:
                value = yield from get(key)
                outcome["gets"] += 1
                if value != expected[key]:
                    outcome["wrong"] += 1

        def scenario(sim):
            keys = sorted(expected)
            yield from phase(keys)                     # 3 shards
            shard_map.add_shard(3, node=4)
            outcome["versions"].append(shard_map.version)
            yield from phase(keys)                     # 4 shards
            shard_map.remove_shard(3)
            outcome["versions"].append(shard_map.version)
            yield from phase(keys)                     # back to 3

        cluster.sim.process(scenario(cluster.sim))
        cluster.run(until=100_000_000)

        assert outcome["gets"] == 3 * NUM_KEYS         # no phase stalled
        assert outcome["wrong"] == 0                   # every GET verified
        assert outcome["versions"] == [3, 4]           # bumps observed
