"""Property-based tests for the load-aware partition planner.

``PartitionPlan.from_profile`` must be a *pure, deterministic* function
of the weight vector (any float noise or dict-order dependence would
silently break bit-identical parallel replay), must always yield a
well-formed plan, and its greedy LPT packing carries the classical
balance guarantee: no bin exceeds the ideal share by more than one
item's weight.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import PartitionPlan
from repro.sim.parallel import PartitionError

weights_st = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=24)


def plans(draw_parts=True):
    """(weights, num_parts) pairs with num_parts in range."""
    return weights_st.flatmap(
        lambda ws: st.tuples(
            st.just(ws), st.integers(min_value=1, max_value=len(ws))))


class TestFromProfileProperties:
    @given(plans())
    @settings(max_examples=150, deadline=None)
    def test_well_formed(self, case):
        weights, num_parts = case
        plan = PartitionPlan.from_profile(weights, num_parts)
        assert len(plan.owner) == len(weights)
        assert set(plan.owner) == set(range(num_parts))
        for rank in range(num_parts):
            assert plan.nodes_of(rank)       # no empty partition

    @given(plans())
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, case):
        weights, num_parts = case
        a = PartitionPlan.from_profile(weights, num_parts)
        b = PartitionPlan.from_profile(list(weights), num_parts)
        c = PartitionPlan.from_profile(
            {i: w for i, w in enumerate(weights)}, num_parts)
        assert a.owner == b.owner == c.owner

    @given(plans())
    @settings(max_examples=100, deadline=None)
    def test_rank_labels_follow_lowest_node(self, case):
        """Ranks are relabeled by each bin's lowest node id, so the
        first time each rank appears in the owner vector is in rank
        order — node 0 always belongs to rank 0."""
        weights, num_parts = case
        plan = PartitionPlan.from_profile(weights, num_parts)
        first_seen = []
        for rank in plan.owner:
            if rank not in first_seen:
                first_seen.append(rank)
        assert first_seen == sorted(first_seen)
        assert plan.owner[0] == 0

    @given(plans())
    @settings(max_examples=150, deadline=None)
    def test_lpt_balance_bound(self, case):
        """Greedy LPT: max bin load <= ideal share + one max weight."""
        weights, num_parts = case
        plan = PartitionPlan.from_profile(weights, num_parts)
        loads = [sum(weights[n] for n in plan.nodes_of(r))
                 for r in range(num_parts)]
        ideal = sum(weights) / num_parts
        assert max(loads) <= ideal + max(weights) + 1e-6

    @given(weights_st)
    @settings(max_examples=50, deadline=None)
    def test_one_part_per_node_is_identity(self, weights):
        """Sanity on the packing direction: with as many parts as
        nodes, every node gets its own partition."""
        plan = PartitionPlan.from_profile(weights, len(weights))
        assert sorted(plan.owner) == list(range(len(weights)))


class TestFromProfileValidation:
    def test_negative_weight_rejected(self):
        with pytest.raises(PartitionError):
            PartitionPlan.from_profile([1.0, -0.5], 2)

    def test_nan_weight_rejected(self):
        with pytest.raises(PartitionError):
            PartitionPlan.from_profile([1.0, float("nan")], 2)

    def test_num_parts_out_of_range(self):
        with pytest.raises(PartitionError):
            PartitionPlan.from_profile([1.0, 2.0], 3)
        with pytest.raises(PartitionError):
            PartitionPlan.from_profile([1.0, 2.0], 0)
