"""Partitioned fault-tolerant BSP: crash/recovery bit-for-bit goldens.

``FaultTolerantBSPEngine(workers=N)`` runs the rack on the conservative
parallel engine with the crash schedule replayed identically in every
worker process. Whatever the partitioning or transport, the PageRank
values must equal the *serial fault-free* baseline (recovery restores
exact state), and the simulated timeline (elapsed time, recovery count,
remote reads, checkpoint count) must be identical across every
(workers, transport) configuration for a given crash schedule.
"""

from __future__ import annotations

import pytest

from repro.apps.bsp import (BSPEngine, FaultTolerantBSPEngine,
                            PageRankProgram)
from repro.apps.graph import zipf_graph

NODES = 3
SUPERSTEPS = 4
VICTIM = 1
RESTART_AFTER_NS = 20_000.0
#: One crash during an early superstep (recovery guaranteed), one near
#: the end of the run (the crash may land after the work is done — the
#: point is that every configuration agrees on whether it did).
CRASH_POINTS = (3_000.0, 12_000.0)

CONFIGS = [(2, "inline"), (3, "inline"), (2, "shm"), (2, "process")]


@pytest.fixture(scope="module")
def graph():
    return zipf_graph(60, avg_degree=4, seed=3)


@pytest.fixture(scope="module")
def baseline(graph):
    """Serial, fault-free run: the single source of truth for values."""
    engine = BSPEngine(graph, NODES, seed=7)
    return engine.run(PageRankProgram(), SUPERSTEPS,
                      stop_on_convergence=False)


def _run_ft(graph, schedule, workers=None, transport=None):
    kwargs = {}
    if workers is not None:
        kwargs.update(workers=workers, transport=transport)
    engine = FaultTolerantBSPEngine(graph, NODES, seed=7,
                                    checkpoint_every=1,
                                    crash_schedule=schedule, **kwargs)
    return engine.run(PageRankProgram(), SUPERSTEPS,
                      stop_on_convergence=False)


class TestPartitionedFaultFree:
    @pytest.mark.parametrize("workers,transport", CONFIGS)
    def test_matches_serial(self, graph, baseline, workers, transport):
        got = _run_ft(graph, (), workers=workers, transport=transport)
        assert got.values == baseline.values
        assert got.recoveries == 0


class TestPartitionedCrashRecovery:
    @pytest.mark.parametrize("crash_ns", CRASH_POINTS)
    def test_recovers_bit_for_bit(self, graph, baseline, crash_ns):
        schedule = ((VICTIM, crash_ns, RESTART_AFTER_NS),)
        serial = _run_ft(graph, schedule)
        # Recovery restores exact state: values match the *fault-free*
        # baseline even though a node died and was restored mid-run.
        assert serial.values == baseline.values
        if crash_ns == CRASH_POINTS[0]:
            assert serial.recoveries >= 1

        results = {}
        for workers, transport in CONFIGS:
            got = _run_ft(graph, schedule, workers=workers,
                          transport=transport)
            assert got.values == baseline.values, \
                f"values diverge at w={workers} t={transport}"
            results[(workers, transport)] = got

        # The simulated timeline is partition- and transport-invariant:
        # every partitioned configuration agrees exactly. (The serial FT
        # engine checkpoints without the fabric-carried control plane,
        # so its elapsed_ns is a different — also deterministic —
        # timeline; only values/supersteps/recoveries carry over.)
        first = results[CONFIGS[0]]
        if crash_ns == CRASH_POINTS[0]:
            assert first.recoveries >= 1
        for key, got in results.items():
            assert got.supersteps_run == serial.supersteps_run, key
            assert got.elapsed_ns == first.elapsed_ns, key
            assert got.recoveries == first.recoveries, key
            assert got.remote_reads == first.remote_reads, key
            assert got.checkpoints == first.checkpoints, key
