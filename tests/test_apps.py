"""Tests for the applications: graph substrate, PageRank x3, KV store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    Graph,
    KVClient,
    KVServer,
    pagerank_reference,
    partition_random,
    run_shm,
    run_sonuma_bulk,
    run_sonuma_fine,
    zipf_graph,
)
from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE


class TestGraph:
    def test_zipf_graph_is_consistent(self):
        graph = zipf_graph(500, avg_degree=6, seed=3)
        graph.validate()
        assert graph.num_vertices == 500
        assert graph.num_edges > 500

    def test_zipf_graph_deterministic_by_seed(self):
        a = zipf_graph(200, seed=11)
        b = zipf_graph(200, seed=11)
        assert a.in_neighbors == b.in_neighbors
        c = zipf_graph(200, seed=12)
        assert a.in_neighbors != c.in_neighbors

    def test_zipf_degree_distribution_is_skewed(self):
        graph = zipf_graph(2000, avg_degree=8, seed=5)
        degrees = sorted(graph.out_degree, reverse=True)
        top_share = sum(degrees[:200]) / sum(degrees)
        assert top_share > 0.25  # top 10% of vertices carry >25% of edges

    def test_no_self_loops_or_zero_out_degree(self):
        graph = zipf_graph(300, seed=9)
        for v in range(graph.num_vertices):
            assert v not in graph.in_neighbors[v]
            assert graph.out_degree[v] >= 1

    def test_validate_catches_bad_out_degree(self):
        graph = Graph(num_vertices=2, in_neighbors=[[1], []],
                      out_degree=[1, 0])
        with pytest.raises(ValueError):
            graph.validate()  # vertex 1 has an edge but out_degree 0

    def test_reference_matches_networkx(self):
        import networkx as nx

        graph = zipf_graph(150, avg_degree=5, seed=2)
        iterations = 40
        ours = pagerank_reference(graph, iterations)
        # The generator can emit parallel edges; MultiDiGraph keeps them
        # so networkx weighs repeated endorsements the same way we do.
        g = nx.MultiDiGraph()
        g.add_nodes_from(range(graph.num_vertices))
        for v in range(graph.num_vertices):
            for u in graph.in_neighbors[v]:
                g.add_edge(u, v)
        theirs = nx.pagerank(g, alpha=0.85, max_iter=200, tol=1e-12)
        for v in range(graph.num_vertices):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-6)


class TestPartition:
    def test_partitions_are_balanced(self):
        graph = zipf_graph(1000, seed=1)
        part = partition_random(graph, 8)
        sizes = [len(m) for m in part.members]
        assert max(sizes) - min(sizes) <= 1

    def test_local_index_is_dense_per_node(self):
        graph = zipf_graph(100, seed=1)
        part = partition_random(graph, 4)
        for node, members in enumerate(part.members):
            indices = sorted(part.local_index[v] for v in members)
            assert indices == list(range(len(members)))

    def test_cut_edges_grow_with_parts(self):
        graph = zipf_graph(500, seed=1)
        cut2 = partition_random(graph, 2).cut_edges(graph)
        cut8 = partition_random(graph, 8).cut_edges(graph)
        assert cut8 > cut2

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_property_every_vertex_owned_exactly_once(self, parts):
        graph = zipf_graph(120, seed=4)
        part = partition_random(graph, parts)
        seen = set()
        for members in part.members:
            for v in members:
                assert v not in seen
                seen.add(v)
        assert seen == set(range(graph.num_vertices))


class TestPageRankVariants:
    """All three timed implementations must agree with the reference
    bit-for-bit (they execute the same floating-point update)."""

    @pytest.fixture(scope="class")
    def graph(self):
        return zipf_graph(128, avg_degree=5, seed=21)

    def test_shm_matches_reference(self, graph):
        ref = pagerank_reference(graph, 2)
        result = run_shm(graph, 4, supersteps=2)
        assert max(abs(a - b) for a, b in zip(ref, result.ranks)) < 1e-12

    def test_bulk_matches_reference(self, graph):
        ref = pagerank_reference(graph, 2)
        result = run_sonuma_bulk(graph, 3, supersteps=2)
        assert max(abs(a - b) for a, b in zip(ref, result.ranks)) < 1e-12

    def test_fine_matches_reference(self, graph):
        ref = pagerank_reference(graph, 2)
        result = run_sonuma_fine(graph, 3, supersteps=2)
        assert max(abs(a - b) for a, b in zip(ref, result.ranks)) < 1e-12

    def test_fine_issues_one_read_per_cut_edge(self, graph):
        part = partition_random(graph, 3)
        expected = part.cut_edges(graph)
        result = run_sonuma_fine(graph, 3, supersteps=1)
        assert result.remote_reads == expected

    def test_bulk_issues_one_read_per_peer_per_superstep(self, graph):
        result = run_sonuma_bulk(graph, 3, supersteps=2)
        assert result.remote_reads == 2 * 3 * 2  # steps x nodes x peers

    def test_parallelism_speeds_up_shm(self, graph):
        t1 = run_shm(graph, 1).elapsed_ns
        t4 = run_shm(graph, 4).elapsed_ns
        assert t4 < t1


CTX = 1


class TestKVStore:
    def _build(self, num_buckets=256):
        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        gctx = cluster.create_global_context(CTX, 64 * PAGE_SIZE)
        server_session = RMCSession(cluster.nodes[1].core, gctx.qp(1),
                                    gctx.entry(1))
        client_session = RMCSession(cluster.nodes[0].core, gctx.qp(0),
                                    gctx.entry(0))
        server = KVServer(server_session, num_buckets=num_buckets)
        client = KVClient(client_session, server_nid=1,
                          num_buckets=num_buckets)
        return cluster, server, client

    def test_get_returns_stored_value(self):
        cluster, server, client = self._build()
        server.put_local(42, b"the answer")

        def app(sim):
            return (yield from client.get(42))

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == b"the answer"

    def test_get_missing_key_returns_none(self):
        cluster, server, client = self._build()
        server.put_local(1, b"x")

        def app(sim):
            return (yield from client.get(999))

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is None

    def test_collisions_resolved_by_probing(self):
        cluster, server, client = self._build(num_buckets=4)
        values = {k: bytes([k]) * 8 for k in (1, 2, 3, 4)}
        for k, v in values.items():
            server.put_local(k, v)

        def app(sim):
            out = {}
            for k in values:
                out[k] = yield from client.get(k)
            return out

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == values
        assert client.stats.probes >= client.stats.gets  # some probing

    def test_get_latency_is_probes_times_read_rtt(self):
        cluster, server, client = self._build()
        server.put_local(7, b"v")

        def app(sim):
            yield from client.get(7)

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        mean = client.stats.get_latency.mean
        # One probe => roughly one remote read RTT (sub-microsecond).
        assert 150 < mean < 1500

    def test_overwrite_updates_value(self):
        cluster, server, client = self._build()
        server.put_local(5, b"old")
        server.put_local(5, b"new")

        def app(sim):
            return (yield from client.get(5))

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == b"new"
        assert server.entries == 1

    def test_put_timed_server_path(self):
        cluster, server, client = self._build()

        def server_app(sim):
            yield from server.put_timed(10, b"timed")

        def client_app(sim):
            yield cluster.sim.timeout(5000)  # let the server insert first
            return (yield from client.get(10))

        cluster.sim.process(server_app(cluster.sim))
        proc = cluster.sim.process(client_app(cluster.sim))
        cluster.run()
        assert proc.value == b"timed"

    def test_client_cas_put_roundtrip(self):
        cluster, server, client = self._build()
        slot = server.put_local(33, b"seed")

        def app(sim):
            ok = yield from client.put_cas(33, b"updated", slot)
            value = yield from client.get(33)
            return ok, value

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        ok, value = proc.value
        assert ok and value == b"updated"

    def test_key_zero_reserved(self):
        _cluster, server, _client = self._build()
        with pytest.raises(ValueError):
            server.put_local(0, b"nope")

    def test_value_size_limit(self):
        _cluster, server, _client = self._build()
        with pytest.raises(ValueError):
            server.put_local(1, bytes(60))
