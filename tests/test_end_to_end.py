"""End-to-end integration tests: full remote operations through
core -> WQ -> RGP -> fabric -> RRPP -> memory -> reply -> RCP -> CQ."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RemoteOpError, RMCSession
from repro.vm import CACHE_LINE_SIZE, PAGE_SIZE


CTX = 1
SEG_SIZE = 8 * PAGE_SIZE


def make_cluster(num_nodes=2):
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    gctx = cluster.create_global_context(CTX, SEG_SIZE)
    return cluster, gctx


def session_for(cluster, gctx, node_id):
    node = cluster.nodes[node_id]
    return RMCSession(node.core, gctx.qp(node_id), gctx.entry(node_id))


class TestRemoteRead:
    def test_single_line_read_moves_correct_bytes(self):
        cluster, gctx = make_cluster()
        payload = bytes(range(64))
        cluster.poke_segment(1, CTX, 128, payload)
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            yield from session.read_sync(dst_nid=1, offset=128,
                                         local_vaddr=lbuf, length=64)
            return session.buffer_peek(lbuf, 64)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == payload

    def test_read_latency_is_sub_microsecond(self):
        cluster, gctx = make_cluster()
        cluster.poke_segment(1, CTX, 0, bytes(64))
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            start = sim.now
            yield from session.read_sync(1, 0, lbuf, 64)
            return sim.now - start

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        # Paper: ~300 ns for small remote reads on simulated hardware.
        # Cold structures (first-ever op: TLB misses, CT$ miss) make a
        # single-shot read slower; it must still be well under 1 us.
        assert 150 < proc.value < 1000

    def test_multi_line_read(self):
        cluster, gctx = make_cluster()
        payload = bytes((i * 7) % 256 for i in range(1024))
        cluster.poke_segment(1, CTX, 0, payload)
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            yield from session.read_sync(1, 0, lbuf, 1024)
            return session.buffer_peek(lbuf, 1024)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == payload

    def test_unaligned_read(self):
        cluster, gctx = make_cluster()
        payload = bytes(range(200, 230))
        cluster.poke_segment(1, CTX, 100, payload)  # straddles line 64..128
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            yield from session.read_sync(1, 100, lbuf, 30)
            return session.buffer_peek(lbuf, 30)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == payload

    def test_page_spanning_read(self):
        cluster, gctx = make_cluster()
        offset = PAGE_SIZE - 256
        payload = bytes((i * 13) % 256 for i in range(512))
        cluster.poke_segment(1, CTX, offset, payload)
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            yield from session.read_sync(1, offset, lbuf, 512)
            return session.buffer_peek(lbuf, 512)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == payload


class TestRemoteWrite:
    def test_single_line_write(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)
        payload = bytes(reversed(range(64)))
        session.buffer_poke(lbuf, payload)

        def app(sim):
            yield from session.write_sync(1, 256, lbuf, 64)

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert cluster.peek_segment(1, CTX, 256, 64) == payload

    def test_multi_line_write(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        payload = bytes((3 * i) % 256 for i in range(2048))
        lbuf = session.alloc_buffer(4096)
        session.buffer_poke(lbuf, payload)

        def app(sim):
            yield from session.write_sync(1, 0, lbuf, 2048)

        cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert cluster.peek_segment(1, CTX, 0, 2048) == payload

    def test_write_then_read_roundtrip(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        wbuf = session.alloc_buffer(4096)
        rbuf = session.alloc_buffer(4096)
        payload = b"soNUMA!!" * 16
        session.buffer_poke(wbuf, payload)

        def app(sim):
            yield from session.write_sync(1, 512, wbuf, len(payload))
            yield from session.read_sync(1, 512, rbuf, len(payload))
            return session.buffer_peek(rbuf, len(payload))

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == payload


class TestAtomics:
    def test_fetch_add_returns_old_and_adds(self):
        cluster, gctx = make_cluster()
        cluster.poke_segment(1, CTX, 0, (41).to_bytes(8, "little"))
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            old = yield from session.fetch_add_sync(1, 0, lbuf, 9)
            return old

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value == 41
        stored = int.from_bytes(cluster.peek_segment(1, CTX, 0, 8), "little")
        assert stored == 50

    def test_fetch_add_from_two_nodes_is_atomic(self):
        cluster, gctx = make_cluster(num_nodes=3)
        cluster.poke_segment(2, CTX, 0, (0).to_bytes(8, "little"))
        sessions = [session_for(cluster, gctx, n) for n in (0, 1)]
        bufs = [s.alloc_buffer(4096) for s in sessions]

        def adder(sim, session, lbuf, count):
            for _ in range(count):
                yield from session.fetch_add_sync(2, 0, lbuf, 1)

        for session, lbuf in zip(sessions, bufs):
            cluster.sim.process(adder(cluster.sim, session, lbuf, 20))
        cluster.run()
        total = int.from_bytes(cluster.peek_segment(2, CTX, 0, 8), "little")
        assert total == 40  # no lost updates

    def test_compare_swap_success_and_failure(self):
        cluster, gctx = make_cluster()
        cluster.poke_segment(1, CTX, 64, (7).to_bytes(8, "little"))
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            old1 = yield from session.compare_swap_sync(1, 64, lbuf,
                                                        compare=7, swap=100)
            old2 = yield from session.compare_swap_sync(1, 64, lbuf,
                                                        compare=7, swap=200)
            return old1, old2

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        old1, old2 = proc.value
        assert old1 == 7       # swap happened
        assert old2 == 100     # second CAS observed the new value, failed
        stored = int.from_bytes(cluster.peek_segment(1, CTX, 64, 8), "little")
        assert stored == 100


class TestAsyncAPI:
    def test_pipelined_async_reads_complete_out_of_order_safely(self):
        cluster, gctx = make_cluster()
        for i in range(16):
            cluster.poke_segment(1, CTX, i * 64, bytes([i]) * 64)
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(16 * 64)
        completions = []

        def app(sim):
            for i in range(16):
                yield from session.wait_for_slot(
                    lambda cq: completions.append(cq.wq_index))
                yield from session.read_async(
                    1, i * 64, lbuf + i * 64, 64,
                    callback=lambda cq: completions.append(cq.wq_index))
            yield from session.drain_cq(
                lambda cq: completions.append(cq.wq_index))
            return session.buffer_peek(lbuf, 16 * 64)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert len(completions) == 16
        for i in range(16):
            assert proc.value[i * 64:(i + 1) * 64] == bytes([i]) * 64

    def test_async_overlap_is_faster_than_sync(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(64 * 64)
        n = 32

        def sync_app(sim):
            start = sim.now
            for i in range(n):
                yield from session.read_sync(1, i * 64, lbuf + i * 64, 64)
            return sim.now - start

        proc = cluster.sim.process(sync_app(cluster.sim))
        cluster.run()
        sync_time = proc.value

        cluster2, gctx2 = make_cluster()
        session2 = session_for(cluster2, gctx2, 0)
        lbuf2 = session2.alloc_buffer(64 * 64)

        def async_app(sim):
            start = sim.now
            for i in range(n):
                yield from session2.wait_for_slot()
                yield from session2.read_async(1, i * 64, lbuf2 + i * 64, 64)
            yield from session2.drain_cq()
            return sim.now - start

        proc2 = cluster2.sim.process(async_app(cluster2.sim))
        cluster2.run()
        async_time = proc2.value
        assert async_time < sync_time / 1.5  # pipelining hides latency

    def test_wq_full_without_wait_raises(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(PAGE_SIZE)
        depth = gctx.qp(0).size

        def app(sim):
            with pytest.raises(RuntimeError, match="WQ full"):
                for i in range(depth + 1):
                    yield from session.read_async(1, 0, lbuf, 64)
            yield from session.drain_cq()

        cluster.sim.process(app(cluster.sim))
        cluster.run()


class TestErrors:
    def test_out_of_segment_read_reports_error_via_cq(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            with pytest.raises(RemoteOpError, match="segment_violation"):
                yield from session.read_sync(1, SEG_SIZE + 64, lbuf, 64)
            return True

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is True
        # The destination RMC counted the violation.
        assert cluster.nodes[1].rmc.counters["errors_segment_violation"] >= 1

    def test_unknown_context_reports_bad_context(self):
        # Node 1 never opened ctx 9; requests against it must fail cleanly.
        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        cluster.nodes[0].driver.open_context(9, SEG_SIZE)
        cluster.nodes[1].driver.open_context(CTX, SEG_SIZE)  # different ctx
        qp = cluster.nodes[0].driver.create_qp(9)
        session = RMCSession(cluster.nodes[0].core, qp,
                             cluster.nodes[0].driver.contexts[9])
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            with pytest.raises(RemoteOpError, match="bad_context"):
                yield from session.read_sync(1, 0, lbuf, 64)
            return True

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        assert proc.value is True


class TestDriverSecurity:
    def test_acl_denies_unlisted_context(self):
        from repro.node import ContextPermissionError

        cluster = Cluster(config=ClusterConfig(num_nodes=1))
        cluster.nodes[0].driver.restrict_contexts([5])
        with pytest.raises(ContextPermissionError):
            cluster.nodes[0].driver.open_context(6, PAGE_SIZE)
        cluster.nodes[0].driver.open_context(5, PAGE_SIZE)  # allowed

    def test_failure_notification_reaches_driver(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)
        cluster.fabric.fail_node(1)

        def app(sim):
            # The request is dropped; don't wait for completion.
            yield from session.read_async(1, 0, lbuf, 64)
            yield sim.timeout(500)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=5000)
        assert len(cluster.nodes[0].driver.failures) == 1
        assert cluster.nodes[0].driver.failures[0].dst_nid == 1

    def test_rmc_reset_aborts_in_flight(self):
        cluster, gctx = make_cluster()
        session = session_for(cluster, gctx, 0)
        lbuf = session.alloc_buffer(4096)
        cluster.fabric.fail_node(1)

        def app(sim):
            yield from session.read_async(1, 0, lbuf, 64)
            yield sim.timeout(1000)
            return cluster.nodes[0].driver.reset_rmc()

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run(until=5000)
        assert proc.value == 1  # one transaction was aborted
