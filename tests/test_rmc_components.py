"""Unit + property tests for RMC internals: WQ/CQ, ITT, CT/CT$, MMU."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol import Opcode
from repro.rmc import (
    CompletionQueue,
    ContextCache,
    ContextEntry,
    ContextTable,
    CQEntry,
    InflightTransactionTable,
    ITTFullError,
    QueuePair,
    WorkQueue,
    WQEntry,
)
from repro.vm import PAGE_SIZE, AddressSpace, FrameAllocator, PhysicalMemory


def make_wq_entry(length=64, op=Opcode.RREAD):
    return WQEntry(op=op, dst_nid=1, offset=0, local_vaddr=0x1000,
                   length=length)


def make_qp(size=8):
    return QueuePair(qp_id=1, ctx_id=1, asid=1,
                     wq=WorkQueue(size, 0),
                     cq=CompletionQueue(size, size * 64))


class TestWorkQueue:
    def test_post_consume_cycle(self):
        wq = WorkQueue(4, 0)
        index = wq.post(make_wq_entry())
        assert wq.poll() == index
        entry = wq.consume(index)
        assert entry.op is Opcode.RREAD
        assert wq.poll() is None

    def test_slot_not_reusable_until_released(self):
        wq = WorkQueue(2, 0)
        a = wq.post(make_wq_entry())
        b = wq.post(make_wq_entry())
        wq.consume(wq.poll())
        wq.consume(wq.poll())
        # Both consumed by the RMC but neither completion reaped yet.
        assert not wq.can_post()
        wq.release_slot(a)
        assert wq.can_post()
        c = wq.post(make_wq_entry())
        assert c == a  # the freed slot is reused
        assert c != b

    def test_out_of_order_release_keeps_indices_unique(self):
        # The regression behind the fine-grain PageRank bug: completions
        # arriving out of order must never let two outstanding requests
        # share a WQ index.
        wq = WorkQueue(4, 0)
        indices = [wq.post(make_wq_entry()) for _ in range(4)]
        for i in indices:
            wq.consume(wq.poll())
        wq.release_slot(indices[2])  # completion for slot 2 arrives first
        fresh = wq.post(make_wq_entry())
        assert fresh == indices[2]
        # Slots 0,1,3 are still outstanding; the fresh one is unique.
        assert fresh not in (indices[0], indices[1], indices[3]) or \
            fresh == indices[2]

    def test_consume_order_is_post_order(self):
        wq = WorkQueue(4, 0)
        first = wq.post(make_wq_entry())
        second = wq.post(make_wq_entry())
        assert wq.poll() == first
        wq.consume(first)
        assert wq.poll() == second

    def test_consume_out_of_order_rejected(self):
        wq = WorkQueue(4, 0)
        wq.post(make_wq_entry())
        second = wq.post(make_wq_entry())
        with pytest.raises(RuntimeError, match="out of order"):
            wq.consume(second)

    def test_full_queue_rejects_post(self):
        wq = WorkQueue(2, 0)
        wq.post(make_wq_entry())
        wq.post(make_wq_entry())
        with pytest.raises(RuntimeError, match="full"):
            wq.post(make_wq_entry())
        with pytest.raises(RuntimeError, match="full"):
            wq.next_free()

    def test_double_release_rejected(self):
        wq = WorkQueue(2, 0)
        index = wq.post(make_wq_entry())
        wq.consume(index)
        wq.release_slot(index)
        with pytest.raises(RuntimeError, match="already free"):
            wq.release_slot(index)

    def test_on_post_hook_fires(self):
        wq = WorkQueue(2, 0)
        fired = []
        wq.on_post = lambda: fired.append(True)
        wq.post(make_wq_entry())
        assert fired == [True]

    def test_slot_vaddr_layout(self):
        wq = WorkQueue(4, 0x2000)
        assert wq.slot_vaddr(0) == 0x2000
        assert wq.slot_vaddr(3) == 0x2000 + 3 * 64
        with pytest.raises(IndexError):
            wq.slot_vaddr(4)

    @given(st.lists(st.sampled_from(["post", "consume", "release"]),
                    min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_property_outstanding_indices_always_unique(self, ops):
        """Under any legal op sequence, outstanding indices are unique
        and bounded by the queue size."""
        wq = WorkQueue(4, 0)
        consumed = []   # consumed but not yet released
        posted = []     # posted but not yet consumed
        for op in ops:
            if op == "post" and wq.can_post():
                posted.append(wq.post(make_wq_entry()))
            elif op == "consume" and wq.poll() is not None:
                index = wq.poll()
                wq.consume(index)
                posted.remove(index)
                consumed.append(index)
            elif op == "release" and consumed:
                wq.release_slot(consumed.pop(0))
            outstanding = posted + consumed
            assert len(set(outstanding)) == len(outstanding)
            assert len(outstanding) + wq.free_slots == wq.size


class TestCompletionQueue:
    def test_push_poll_reap(self):
        cq = CompletionQueue(4, 0)
        cq.push(CQEntry(wq_index=2))
        entry = cq.poll()
        assert entry.wq_index == 2
        assert cq.reap().wq_index == 2
        assert cq.poll() is None

    def test_fifo_order(self):
        cq = CompletionQueue(4, 0)
        for i in range(4):
            cq.push(CQEntry(wq_index=i))
        assert [cq.reap().wq_index for _ in range(4)] == [0, 1, 2, 3]

    def test_overflow_detected(self):
        cq = CompletionQueue(2, 0)
        cq.push(CQEntry(wq_index=0))
        cq.push(CQEntry(wq_index=1))
        with pytest.raises(RuntimeError, match="overflow"):
            cq.push(CQEntry(wq_index=0))

    def test_reap_empty_rejected(self):
        cq = CompletionQueue(2, 0)
        with pytest.raises(RuntimeError, match="empty"):
            cq.reap()

    def test_error_entry_carries_reason(self):
        cq = CompletionQueue(2, 0)
        cq.push(CQEntry(wq_index=1, error="segment_violation"))
        assert cq.reap().error == "segment_violation"


class TestWQEntryValidation:
    def test_length_positive(self):
        with pytest.raises(ValueError):
            make_wq_entry(length=0)

    def test_atomics_are_8_bytes(self):
        with pytest.raises(ValueError):
            WQEntry(op=Opcode.RFETCH_ADD, dst_nid=0, offset=0,
                    local_vaddr=0, length=64, operand=1)
        ok = WQEntry(op=Opcode.RFETCH_ADD, dst_nid=0, offset=0,
                     local_vaddr=0, length=8, operand=1)
        assert ok.length == 8


class TestITT:
    def _alloc(self, itt, lines=1):
        return itt.allocate(qp=make_qp(), wq_index=0, op=Opcode.RREAD,
                            base_offset=0, local_vaddr=0x1000,
                            total_lines=lines)

    def test_tid_allocation_and_retire(self):
        itt = InflightTransactionTable(capacity=4)
        entry = self._alloc(itt)
        assert itt.in_flight == 1
        itt.complete_line(entry.tid)
        assert entry.done
        itt.retire(entry.tid)
        assert itt.in_flight == 0

    def test_capacity_exhaustion(self):
        itt = InflightTransactionTable(capacity=2)
        self._alloc(itt)
        self._alloc(itt)
        with pytest.raises(ITTFullError):
            self._alloc(itt)

    def test_tids_unique_while_in_flight(self):
        itt = InflightTransactionTable(capacity=8)
        tids = {self._alloc(itt).tid for _ in range(8)}
        assert len(tids) == 8

    def test_multi_line_progress(self):
        itt = InflightTransactionTable()
        entry = self._alloc(itt, lines=3)
        itt.complete_line(entry.tid)
        itt.complete_line(entry.tid)
        assert not entry.done
        itt.complete_line(entry.tid)
        assert entry.done

    def test_complete_beyond_total_rejected(self):
        itt = InflightTransactionTable()
        entry = self._alloc(itt, lines=1)
        itt.complete_line(entry.tid)
        with pytest.raises(RuntimeError, match="already fully"):
            itt.complete_line(entry.tid)

    def test_retire_unfinished_rejected(self):
        itt = InflightTransactionTable()
        entry = self._alloc(itt, lines=2)
        itt.complete_line(entry.tid)
        with pytest.raises(RuntimeError, match="retire"):
            itt.retire(entry.tid)

    def test_error_propagates_to_entry(self):
        itt = InflightTransactionTable()
        entry = self._alloc(itt, lines=2)
        itt.complete_line(entry.tid, error="segment_violation")
        itt.complete_line(entry.tid)
        assert entry.error == "segment_violation"

    def test_line_local_vaddr_mapping(self):
        itt = InflightTransactionTable()
        entry = itt.allocate(qp=make_qp(), wq_index=0, op=Opcode.RREAD,
                             base_offset=256, local_vaddr=0x8000,
                             total_lines=4)
        # A reply for remote offset 384 lands 128 bytes into the buffer.
        assert entry.line_local_vaddr(384) == 0x8000 + 128

    def test_abort_all_frees_everything(self):
        itt = InflightTransactionTable(capacity=4)
        for _ in range(3):
            self._alloc(itt)
        assert itt.abort_all() == 3
        assert itt.in_flight == 0
        # All tids are usable again.
        for _ in range(4):
            self._alloc(itt)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20)
    def test_property_allocate_retire_conserves_capacity(self, n):
        itt = InflightTransactionTable(capacity=64)
        entries = [self._alloc(itt) for _ in range(n)]
        for entry in entries:
            itt.complete_line(entry.tid)
            itt.retire(entry.tid)
        assert itt.in_flight == 0
        assert len(itt._free_tids) == 64


def make_context_entry(ctx_id=1):
    mem = PhysicalMemory(16 * PAGE_SIZE)
    space = AddressSpace(asid=ctx_id, frames=FrameAllocator(mem))
    segment = space.register_segment(ctx_id, 4 * PAGE_SIZE)
    return ContextEntry(ctx_id=ctx_id, address_space=space, segment=segment)


class TestContextTable:
    def test_install_lookup_remove(self):
        ct = ContextTable()
        entry = make_context_entry(5)
        ct.install(entry)
        assert ct.lookup(5) is entry
        assert 5 in ct
        ct.remove(5)
        assert ct.lookup(5) is None

    def test_duplicate_install_rejected(self):
        ct = ContextTable()
        ct.install(make_context_entry(1))
        with pytest.raises(ValueError):
            ct.install(make_context_entry(1))

    def test_qp_registration_checks_ctx(self):
        entry = make_context_entry(1)
        qp = make_qp()
        entry.register_qp(qp)
        assert entry.qps == [qp]
        bad_qp = QueuePair(qp_id=2, ctx_id=9, asid=1,
                           wq=WorkQueue(2, 0), cq=CompletionQueue(2, 128))
        with pytest.raises(ValueError):
            entry.register_qp(bad_qp)

    def test_all_qps_spans_contexts(self):
        ct = ContextTable()
        a = make_context_entry(1)
        b = make_context_entry(2)
        ct.install(a)
        ct.install(b)
        a.register_qp(make_qp())
        assert len(ct.all_qps()) == 1


class TestContextCache:
    def test_miss_then_hit(self):
        cache = ContextCache(capacity=2)
        entry = make_context_entry(1)
        assert cache.lookup(1) is None
        cache.insert(entry)
        assert cache.lookup(1) is entry
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = ContextCache(capacity=2)
        e1, e2, e3 = (make_context_entry(i) for i in (1, 2, 3))
        cache.insert(e1)
        cache.insert(e2)
        cache.lookup(1)          # 1 becomes MRU
        cache.insert(e3)         # evicts 2
        assert cache.lookup(2) is None
        assert cache.lookup(1) is e1

    def test_invalidate_and_flush(self):
        cache = ContextCache()
        cache.insert(make_context_entry(1))
        cache.invalidate(1)
        assert cache.lookup(1) is None
        cache.insert(make_context_entry(2))
        cache.flush()
        assert cache.lookup(2) is None
