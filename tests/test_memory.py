"""Unit + property tests for caches, DRAM, and the coherent hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    Cache,
    CacheConfig,
    DRAMChannel,
    DRAMConfig,
    MemoryConfig,
    MemorySystem,
)
from repro.sim import Simulator
from repro.vm import PAGE_SIZE, PhysicalMemory


def small_l1(latency=1.5, mshrs=32):
    return CacheConfig(name="L1", size_bytes=1024, associativity=2,
                       latency_ns=latency, mshrs=mshrs)


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(small_l1())
        assert not cache.probe(0x100)
        cache.fill(0x100)
        assert cache.probe(0x100)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offsets(self):
        cache = Cache(small_l1())
        cache.fill(0x100)
        assert cache.probe(0x100 + 63)
        assert not cache.probe(0x100 + 64)

    def test_lru_eviction(self):
        # 2-way sets; three conflicting lines evict the least recent.
        cfg = CacheConfig(name="t", size_bytes=128, associativity=2,
                          latency_ns=1.0)  # a single set of 2 lines
        cache = Cache(cfg)
        cache.fill(0)
        cache.fill(64)
        cache.probe(0)       # 0 becomes MRU
        victim = cache.fill(128)
        assert victim is not None and victim.line_addr == 64

    def test_dirty_victim_reported(self):
        cfg = CacheConfig(name="t", size_bytes=128, associativity=2,
                          latency_ns=1.0)
        cache = Cache(cfg)
        cache.fill(0, dirty=True)
        cache.fill(64)
        victim = cache.fill(128)
        assert victim.line_addr == 0 and victim.dirty
        assert cache.writebacks == 1

    def test_write_probe_sets_dirty(self):
        cache = Cache(small_l1())
        cache.fill(0x40)
        cache.probe(0x40, is_write=True)
        evicted = cache.invalidate(0x40)
        assert evicted.dirty

    def test_invalidate_absent_line(self):
        cache = Cache(small_l1())
        assert cache.invalidate(0x40) is None

    def test_flush_counts_dirty(self):
        cache = Cache(small_l1())
        cache.fill(0, dirty=True)
        cache.fill(64, dirty=False)
        assert cache.flush() == 1
        assert cache.occupancy == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=100, associativity=3,
                        latency_ns=1.0)

    @given(addrs=st.lists(st.integers(min_value=0, max_value=2**20),
                          min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_property_occupancy_bounded(self, addrs):
        cfg = CacheConfig(name="p", size_bytes=2048, associativity=4,
                          latency_ns=1.0)
        cache = Cache(cfg)
        for addr in addrs:
            if not cache.probe(addr):
                cache.fill(addr)
            # A just-touched line is always resident.
            assert cache.contains(addr)
        assert cache.occupancy <= cfg.num_lines


class TestDRAM:
    def test_single_access_latency(self):
        sim = Simulator()
        dram = DRAMChannel(sim, DRAMConfig(latency_ns=60, bandwidth_gbps=12,
                                           efficiency=1.0,
                                           controller_overhead_ns=0))
        def proc(sim):
            yield from dram.access(64)
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        # 64B / 12B-per-ns serialization + 60ns latency
        assert p.value == pytest.approx(64 / 12 + 60, rel=1e-6)

    def test_bandwidth_ceiling_pipelines_latency(self):
        # 100 back-to-back line reads: total time ~ N*ser + latency,
        # NOT N*(ser+latency) -- latency overlaps across banks.
        sim = Simulator()
        cfg = DRAMConfig(latency_ns=60, bandwidth_gbps=12, efficiency=1.0,
                         controller_overhead_ns=0)
        dram = DRAMChannel(sim, cfg)
        n = 100

        def reader(sim):
            yield from dram.access(64)

        for _ in range(n):
            sim.process(reader(sim))
        sim.run()
        expected = n * (64 / 12) + 60
        assert sim.now == pytest.approx(expected, rel=0.01)

    def test_efficiency_reduces_bandwidth(self):
        cfg = DRAMConfig(bandwidth_gbps=12, efficiency=0.8)
        assert cfg.effective_bandwidth == pytest.approx(9.6)

    def test_rejects_bad_size(self):
        sim = Simulator()
        dram = DRAMChannel(sim)
        with pytest.raises(ValueError):
            next(dram.access(0))


def make_system(sim=None):
    sim = sim or Simulator()
    phys = PhysicalMemory(64 * PAGE_SIZE)
    system = MemorySystem(sim, phys)
    return sim, system


class TestMemorySystem:
    def test_cold_access_goes_to_dram(self):
        sim, system = make_system()
        core = system.register_agent("core")

        def proc(sim):
            level = yield from core.access(0x1000)
            return level, sim.now

        p = sim.process(proc(sim))
        sim.run()
        level, elapsed = p.value
        assert level == "dram"
        # L1 + L2 latencies + DRAM: ~1.5 + 3 + 15 + 64/9.6 + 60 = ~86 ns.
        assert 60 < elapsed < 110

    def test_second_access_hits_l1(self):
        sim, system = make_system()
        core = system.register_agent("core")

        def proc(sim):
            yield from core.access(0x1000)
            t0 = sim.now
            level = yield from core.access(0x1000)
            return level, sim.now - t0

        p = sim.process(proc(sim))
        sim.run()
        level, dt = p.value
        assert level == "l1"
        assert dt == pytest.approx(1.5)

    def test_l2_serves_other_agents_miss(self):
        sim, system = make_system()
        core = system.register_agent("core")
        rmc = system.register_agent("rmc")

        def proc(sim):
            yield from core.access(0x1000)        # fills L2 + core L1
            level = yield from rmc.access(0x1000)  # should hit in L2
            return level

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "l2"

    def test_write_invalidates_peer_l1(self):
        sim, system = make_system()
        core = system.register_agent("core")
        rmc = system.register_agent("rmc")

        def proc(sim):
            yield from core.access(0x1000)            # core caches the line
            yield from rmc.access(0x1000, is_write=True)  # RMC writes it
            # Core's next read must not be an L1 hit (it was invalidated).
            level = yield from core.access(0x1000)
            return level

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "l2"

    def test_multiline_access_touches_every_line(self):
        sim, system = make_system()
        core = system.register_agent("core")

        def proc(sim):
            yield from core.access(0, size=256)
            return None

        sim.process(proc(sim))
        sim.run()
        assert core.l1.misses == 4  # 4 lines of 64B

    def test_duplicate_agent_rejected(self):
        _, system = make_system()
        system.register_agent("core")
        with pytest.raises(ValueError):
            system.register_agent("core")

    def test_functional_data_path(self):
        _, system = make_system()
        core = system.register_agent("core")
        core.write_bytes(0x2000, b"payload")
        assert core.read_bytes(0x2000, 7) == b"payload"

    def test_mshr_limit_serializes_misses(self):
        # With a single MSHR, two concurrent misses cannot overlap their
        # DRAM fills, so completion takes ~2x one miss.
        sim = Simulator()
        phys = PhysicalMemory(64 * PAGE_SIZE)
        system = MemorySystem(sim, phys)
        core = system.register_agent("core", small_l1(mshrs=1))
        done = []

        def proc(sim, addr):
            yield from core.access(addr)
            done.append(sim.now)

        sim.process(proc(sim, 0x0))
        sim.process(proc(sim, 0x10000))
        sim.run()
        assert len(done) == 2
        assert done[1] >= 2 * 60  # second miss waited for the first fill

    def test_cache_stats_shape(self):
        sim, system = make_system()
        core = system.register_agent("core")

        def proc(sim):
            yield from core.access(0)

        sim.process(proc(sim))
        sim.run()
        stats = system.cache_stats()
        assert "core" in stats and "l2" in stats and "dram" in stats
        assert stats["core"]["misses"] == 1
