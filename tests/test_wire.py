"""Property-based tests for the wire encoding of protocol packets."""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol import (
    HEADER_BYTES,
    TRAILER_BYTES,
    ChecksumError,
    Opcode,
    ReplyPacket,
    ReplyStatus,
    RequestPacket,
    crc16,
    decode,
    encode,
    wire_size,
)

nids = st.integers(min_value=0, max_value=0xFFFF)
tids = st.integers(min_value=0, max_value=0xFFFF)
ctxs = st.integers(min_value=0, max_value=0xFF)
offsets = st.integers(min_value=0, max_value=(1 << 48) - 1)
u64s = st.integers(min_value=0, max_value=2 ** 64 - 1)


def _reseal(raw: bytearray) -> bytes:
    """Recompute the trailer CRC after tampering with earlier bytes."""
    return bytes(raw[:-2]) + struct.pack("<H", crc16(bytes(raw[:-2])))


class TestRequestRoundTrip:
    @given(dst=nids, src=nids, tid=tids, ctx=ctxs, offset=offsets)
    @settings(max_examples=100)
    def test_read_request_roundtrip(self, dst, src, tid, ctx, offset):
        packet = RequestPacket(dst_nid=dst, src_nid=src, op=Opcode.RREAD,
                               ctx_id=ctx, offset=offset, tid=tid)
        decoded = decode(encode(packet))
        assert isinstance(decoded, RequestPacket)
        assert (decoded.dst_nid, decoded.src_nid, decoded.tid) == \
            (dst, src, tid)
        assert decoded.ctx_id == ctx
        assert decoded.offset == offset
        assert decoded.op is Opcode.RREAD

    @given(payload=st.binary(min_size=1, max_size=64), offset=offsets)
    @settings(max_examples=100)
    def test_write_request_roundtrip(self, payload, offset):
        packet = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RWRITE,
                               ctx_id=1, offset=offset, tid=5,
                               length=len(payload), payload=payload)
        decoded = decode(encode(packet))
        assert decoded.payload == payload
        assert decoded.length == len(payload)

    @given(operand=u64s)
    @settings(max_examples=50)
    def test_fetch_add_roundtrip(self, operand):
        packet = RequestPacket(dst_nid=1, src_nid=0,
                               op=Opcode.RFETCH_ADD, ctx_id=1, offset=64,
                               tid=0, length=8, operand=operand)
        decoded = decode(encode(packet))
        assert decoded.operand == operand

    @given(operand=u64s, compare=u64s)
    @settings(max_examples=50)
    def test_cas_roundtrip(self, operand, compare):
        packet = RequestPacket(dst_nid=1, src_nid=0,
                               op=Opcode.RCOMP_SWAP, ctx_id=1, offset=0,
                               tid=0, length=8, operand=operand,
                               compare=compare)
        decoded = decode(encode(packet))
        assert decoded.operand == operand
        assert decoded.compare == compare


class TestReplyRoundTrip:
    @given(payload=st.one_of(st.none(), st.binary(min_size=1, max_size=64)),
           status=st.sampled_from(list(ReplyStatus)),
           old=st.one_of(st.none(), u64s),
           offset=offsets, tid=tids)
    @settings(max_examples=150)
    def test_reply_roundtrip(self, payload, status, old, offset, tid):
        packet = ReplyPacket(dst_nid=2, src_nid=3, tid=tid, offset=offset,
                             status=status, payload=payload, old_value=old)
        decoded = decode(encode(packet))
        assert decoded.status is status
        assert decoded.payload == payload
        assert decoded.old_value == old
        assert decoded.offset == offset
        assert decoded.tid == tid


class TestWireFormat:
    def test_header_is_16_bytes(self):
        # On the wire: 16-byte protocol header + 9-byte link trailer
        # (seq + attempt + incarnation epoch + CRC-16, the
        # Ethernet-FCS-like framing).
        packet = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                               ctx_id=1, offset=0, tid=0)
        assert len(encode(packet)) == HEADER_BYTES + TRAILER_BYTES

    def test_wire_size_tracks_modeled_size_for_reads(self):
        # The modeled size (header + payload) matches the encoder minus
        # the link trailer, which — like an Ethernet FCS — is not part of
        # the protocol-visible packet.
        read = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                             ctx_id=1, offset=0, tid=0)
        assert wire_size(read) == read.size_bytes + TRAILER_BYTES
        write = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RWRITE,
                              ctx_id=1, offset=0, tid=0, length=64,
                              payload=b"\x00" * 64)
        assert wire_size(write) == write.size_bytes + TRAILER_BYTES

    def test_truncated_packet_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode(b"\x00" * 8)

    def test_unknown_opcode_rejected(self):
        packet = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                               ctx_id=1, offset=0, tid=0)
        raw = bytearray(encode(packet))
        raw[1] = 0xEE
        # With a stale CRC the frame dies at the integrity check; with a
        # recomputed CRC the protocol-level opcode check fires.
        with pytest.raises(ChecksumError):
            decode(bytes(raw))
        with pytest.raises(ValueError, match="unknown opcode"):
            decode(_reseal(raw))

    def test_oversized_node_id_rejected(self):
        packet = RequestPacket(dst_nid=70000, src_nid=0, op=Opcode.RREAD,
                               ctx_id=1, offset=0, tid=0)
        with pytest.raises(ValueError, match="u16"):
            encode(packet)


class TestIntegrity:
    """The link-layer trailer: CRC-16 + seq/attempt/epoch round-trips."""

    @given(seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
           attempt=st.integers(min_value=0, max_value=0xFF),
           epoch=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=100)
    def test_seq_attempt_epoch_roundtrip(self, seq, attempt, epoch):
        packet = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                               ctx_id=1, offset=64, tid=7,
                               seq=seq, attempt=attempt, epoch=epoch)
        decoded = decode(encode(packet))
        assert decoded.seq == seq
        assert decoded.attempt == attempt
        assert decoded.epoch == epoch

    @given(seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
           epoch=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=50)
    def test_reply_seq_and_epoch_roundtrip(self, seq, epoch):
        packet = ReplyPacket(dst_nid=0, src_nid=1, tid=3, offset=128,
                             payload=b"x" * 16, seq=seq, epoch=epoch)
        decoded = decode(encode(packet))
        assert decoded.seq == seq
        assert decoded.epoch == epoch

    def test_every_single_bit_flip_is_detected(self):
        # CRC-16 has Hamming distance >= 2: no single-bit corruption of
        # any wire position can ever decode successfully.
        packet = RequestPacket(dst_nid=2, src_nid=1, op=Opcode.RWRITE,
                               ctx_id=3, offset=192, tid=11, length=32,
                               payload=bytes(range(32)), seq=99, attempt=1)
        raw = encode(packet)
        for bit in range(len(raw) * 8):
            flipped = bytearray(raw)
            flipped[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(ValueError):
                decode(bytes(flipped))

    def test_seeded_fuzz_roundtrip_and_corruption(self):
        # Deterministic fuzz sweep: random packets must round-trip, and
        # random bit flips / truncations of their frames must never be
        # delivered as valid packets.
        rng = random.Random(0xC0FFEE)
        for _ in range(200):
            length = rng.randint(1, 64)
            kind = rng.randrange(3)
            if kind == 0:
                packet = RequestPacket(
                    dst_nid=rng.randrange(16), src_nid=rng.randrange(16),
                    op=Opcode.RREAD, ctx_id=rng.randrange(256),
                    offset=rng.randrange(1 << 30), tid=rng.randrange(64),
                    length=length, seq=rng.randrange(1 << 32),
                    attempt=rng.randrange(8))
            elif kind == 1:
                payload = bytes(rng.randrange(256) for _ in range(length))
                packet = RequestPacket(
                    dst_nid=rng.randrange(16), src_nid=rng.randrange(16),
                    op=Opcode.RWRITE, ctx_id=rng.randrange(256),
                    offset=rng.randrange(1 << 30), tid=rng.randrange(64),
                    length=length, payload=payload,
                    seq=rng.randrange(1 << 32), attempt=rng.randrange(8))
            else:
                payload = bytes(rng.randrange(256) for _ in range(length))
                packet = ReplyPacket(
                    dst_nid=rng.randrange(16), src_nid=rng.randrange(16),
                    tid=rng.randrange(64), offset=rng.randrange(1 << 30),
                    payload=payload, seq=rng.randrange(1 << 32))
            raw = encode(packet)
            decoded = decode(raw)
            assert decoded.seq == packet.seq
            assert decoded.payload == packet.payload

            bit = rng.randrange(len(raw) * 8)
            flipped = bytearray(raw)
            flipped[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(ValueError):
                decode(bytes(flipped))

            cut = rng.randrange(len(raw))
            with pytest.raises(ValueError):
                decode(raw[:cut])
