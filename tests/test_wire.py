"""Property-based tests for the wire encoding of protocol packets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol import (
    HEADER_BYTES,
    Opcode,
    ReplyPacket,
    ReplyStatus,
    RequestPacket,
    decode,
    encode,
    wire_size,
)

nids = st.integers(min_value=0, max_value=0xFFFF)
tids = st.integers(min_value=0, max_value=0xFFFF)
ctxs = st.integers(min_value=0, max_value=0xFF)
offsets = st.integers(min_value=0, max_value=(1 << 48) - 1)
u64s = st.integers(min_value=0, max_value=2 ** 64 - 1)


class TestRequestRoundTrip:
    @given(dst=nids, src=nids, tid=tids, ctx=ctxs, offset=offsets)
    @settings(max_examples=100)
    def test_read_request_roundtrip(self, dst, src, tid, ctx, offset):
        packet = RequestPacket(dst_nid=dst, src_nid=src, op=Opcode.RREAD,
                               ctx_id=ctx, offset=offset, tid=tid)
        decoded = decode(encode(packet))
        assert isinstance(decoded, RequestPacket)
        assert (decoded.dst_nid, decoded.src_nid, decoded.tid) == \
            (dst, src, tid)
        assert decoded.ctx_id == ctx
        assert decoded.offset == offset
        assert decoded.op is Opcode.RREAD

    @given(payload=st.binary(min_size=1, max_size=64), offset=offsets)
    @settings(max_examples=100)
    def test_write_request_roundtrip(self, payload, offset):
        packet = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RWRITE,
                               ctx_id=1, offset=offset, tid=5,
                               length=len(payload), payload=payload)
        decoded = decode(encode(packet))
        assert decoded.payload == payload
        assert decoded.length == len(payload)

    @given(operand=u64s)
    @settings(max_examples=50)
    def test_fetch_add_roundtrip(self, operand):
        packet = RequestPacket(dst_nid=1, src_nid=0,
                               op=Opcode.RFETCH_ADD, ctx_id=1, offset=64,
                               tid=0, length=8, operand=operand)
        decoded = decode(encode(packet))
        assert decoded.operand == operand

    @given(operand=u64s, compare=u64s)
    @settings(max_examples=50)
    def test_cas_roundtrip(self, operand, compare):
        packet = RequestPacket(dst_nid=1, src_nid=0,
                               op=Opcode.RCOMP_SWAP, ctx_id=1, offset=0,
                               tid=0, length=8, operand=operand,
                               compare=compare)
        decoded = decode(encode(packet))
        assert decoded.operand == operand
        assert decoded.compare == compare


class TestReplyRoundTrip:
    @given(payload=st.one_of(st.none(), st.binary(min_size=1, max_size=64)),
           status=st.sampled_from(list(ReplyStatus)),
           old=st.one_of(st.none(), u64s),
           offset=offsets, tid=tids)
    @settings(max_examples=150)
    def test_reply_roundtrip(self, payload, status, old, offset, tid):
        packet = ReplyPacket(dst_nid=2, src_nid=3, tid=tid, offset=offset,
                             status=status, payload=payload, old_value=old)
        decoded = decode(encode(packet))
        assert decoded.status is status
        assert decoded.payload == payload
        assert decoded.old_value == old
        assert decoded.offset == offset
        assert decoded.tid == tid


class TestWireFormat:
    def test_header_is_16_bytes(self):
        packet = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                               ctx_id=1, offset=0, tid=0)
        assert len(encode(packet)) == HEADER_BYTES

    def test_wire_size_tracks_modeled_size_for_reads(self):
        # The modeled size (header + payload) matches the encoder for
        # reads and writes (atomic operands ride in the payload area).
        read = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                             ctx_id=1, offset=0, tid=0)
        assert wire_size(read) == read.size_bytes
        write = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RWRITE,
                              ctx_id=1, offset=0, tid=0, length=64,
                              payload=b"\x00" * 64)
        assert wire_size(write) == write.size_bytes

    def test_truncated_packet_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode(b"\x00" * 8)

    def test_unknown_opcode_rejected(self):
        packet = RequestPacket(dst_nid=1, src_nid=0, op=Opcode.RREAD,
                               ctx_id=1, offset=0, tid=0)
        raw = bytearray(encode(packet))
        raw[1] = 0xEE
        with pytest.raises(ValueError, match="unknown opcode"):
            decode(bytes(raw))

    def test_oversized_node_id_rejected(self):
        packet = RequestPacket(dst_nid=70000, src_nid=0, op=Opcode.RREAD,
                               ctx_id=1, offset=0, tid=0)
        with pytest.raises(ValueError, match="u16"):
            encode(packet)
