"""Tests for distributed BFS (the on-line graph query application)."""

import pytest

from repro.apps.bfs import bfs_reference, run_bfs_fine, run_bfs_push
from repro.apps.graph import partition_random, zipf_graph


@pytest.fixture(scope="module")
def graph():
    return zipf_graph(200, avg_degree=5, seed=13)


class TestReference:
    def test_source_distance_zero(self, graph):
        distances = bfs_reference(graph, 0)
        assert distances[0] == 0

    def test_triangle_inequality_over_edges(self, graph):
        """Property: for every edge u->w, dist(w) <= dist(u) + 1."""
        from repro.apps.bfs import _out_neighbors

        distances = bfs_reference(graph, 0)
        out = _out_neighbors(graph)
        for u in range(graph.num_vertices):
            if distances[u] < 0:
                continue
            for w in out[u]:
                assert 0 <= distances[w] <= distances[u] + 1

    def test_unreachable_marked(self):
        from repro.apps.graph import Graph

        # 0 -> 1, vertex 2 isolated from 0 (only 2 -> 0 edge exists).
        graph = Graph(num_vertices=3,
                      in_neighbors=[[2], [0], []],
                      out_degree=[1, 0, 1])
        distances = bfs_reference(graph, 0)
        assert distances == [0, 1, -1]


class TestFineGrain:
    def test_matches_reference(self, graph):
        reference = bfs_reference(graph, 0)
        result = run_bfs_fine(graph, num_nodes=3, source=0)
        assert result.distances == reference

    def test_remote_reads_happen(self, graph):
        result = run_bfs_fine(graph, num_nodes=3, source=0)
        assert result.remote_reads > 0
        assert result.reached > graph.num_vertices // 2

    def test_single_node_needs_no_remote_reads(self, graph):
        result = run_bfs_fine(graph, num_nodes=1, source=0)
        assert result.remote_reads == 0
        assert result.distances == bfs_reference(graph, 0)


class TestPush:
    def test_matches_reference(self, graph):
        reference = bfs_reference(graph, 0)
        result = run_bfs_push(graph, num_nodes=3, source=0)
        assert result.distances == reference

    def test_messages_scale_with_levels_and_peers(self, graph):
        result = run_bfs_push(graph, num_nodes=3, source=0)
        # One message per peer per node per level (plus the final empty
        # round): messages = levels_run * nodes * (nodes - 1).
        assert result.messages % (3 * 2) == 0
        assert result.messages >= (result.levels) * 3 * 2

    def test_variants_agree(self, graph):
        fine = run_bfs_fine(graph, num_nodes=2, source=5)
        push = run_bfs_push(graph, num_nodes=2, source=5)
        assert fine.distances == push.distances
