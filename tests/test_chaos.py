"""Chaos testing: seeded fault injection across the full stack.

A :class:`FaultInjector` attached to the fabric drops, corrupts,
duplicates, and delays packets while real workloads run on top. The
reliability layer (CRC trailer + link sequencing in the NI, watchdog
retransmission in the RGP, reply dedup in the RCP, atomic replay in
the RRPP) must hide every injected fault from the application — or,
when a link is truly dead, surface a ``timeout`` error completion
instead of hanging.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.fabric import FaultInjector, FaultPolicy
from repro.node import NodeConfig
from repro.rmc import RMCConfig
from repro.runtime import (
    Messenger,
    MessagingConfig,
    MessagingTimeout,
    PeerFailure,
    RemoteOpFailed,
    RMCSession,
)
from repro import telemetry
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 16 * PAGE_SIZE


def build(num_nodes=3, policy=None, seed=7, timeout_ns=5000.0,
          max_retries=4, seg=SEG):
    """Cluster with a fast-retransmit RMC and an installed injector."""
    rmc_cfg = RMCConfig(retransmit_timeout_ns=timeout_ns,
                        max_retries=max_retries)
    cluster = Cluster(config=ClusterConfig(
        num_nodes=num_nodes, node=NodeConfig(rmc=rmc_cfg)))
    injector = cluster.fabric.install_fault_injector(
        FaultInjector(seed=seed, default_policy=policy or FaultPolicy()))
    gctx = cluster.create_global_context(CTX, seg)
    sessions = {n: RMCSession(cluster.nodes[n].core, gctx.qp(n),
                              gctx.entry(n)) for n in range(num_nodes)}
    return cluster, gctx, sessions, injector


def _pattern(tag: int, length: int) -> bytes:
    return bytes((tag * 37 + i) & 0xFF for i in range(length))


def _chaos_read_write_run(seed):
    """The canonical chaos workload; returns (mismatches, fingerprint).

    Three nodes cross-read seeded patterns and cross-write signatures
    under 1% drop + 0.5% corruption, exactly the acceptance scenario.
    """
    policy = FaultPolicy(drop_prob=0.01, corrupt_prob=0.005)
    cluster, _g, sessions, injector = build(policy=policy, seed=seed)
    num_nodes = 3
    for peer in range(num_nodes):
        cluster.poke_segment(peer, CTX, 0, _pattern(peer, 2048))
    mismatches = []

    def app(sim, n):
        session = sessions[n]
        lbuf = session.alloc_buffer(8192)
        for rnd in range(6):
            for peer in range(num_nodes):
                if peer == n:
                    continue
                size = 64 * (1 + (rnd + n + peer) % 8)
                yield from session.read_sync(peer, 0, lbuf, size)
                got = session.buffer_peek(lbuf, size)
                if got != _pattern(peer, size):
                    mismatches.append(("read", n, peer, rnd))
        # Leave a signature in every peer's segment.
        sig = _pattern(0xA0 + n, 512)
        session.buffer_poke(lbuf, sig)
        for peer in range(num_nodes):
            if peer == n:
                continue
            yield from session.write_sync(peer, 4096 + n * 512, lbuf, 512)

    for n in range(num_nodes):
        cluster.sim.process(app(cluster.sim, n))
    cluster.run(until=50_000_000)

    for n in range(num_nodes):
        sig = _pattern(0xA0 + n, 512)
        for peer in range(num_nodes):
            if peer == n:
                continue
            if cluster.peek_segment(peer, CTX, 4096 + n * 512, 512) != sig:
                mismatches.append(("write", n, peer))

    snap = telemetry.snapshot(cluster)
    fingerprint = {
        "time_ns": cluster.sim.now,
        "injector": injector.stats(),
        "fabric": cluster.fabric.stats(),
        "retransmissions": snap.total("ni_checksum_dropped"),
        "rmc": [node.rmc_counters for node in snap.nodes],
    }
    return mismatches, fingerprint


class TestChaosWorkloads:
    def test_reads_and_writes_survive_drop_and_corruption(self, chaos_seed):
        mismatches, fingerprint = _chaos_read_write_run(seed=chaos_seed(1))
        assert mismatches == []
        # The run must actually have been chaotic...
        stats = fingerprint["injector"]
        assert stats["fault_drops"] + stats["fault_corruptions"] > 0
        # ...and the recovery machinery must have engaged: every injected
        # fault kills a packet, so some transaction retransmitted.
        retransmissions = sum(c.get("retransmissions", 0)
                              for c in fingerprint["rmc"])
        assert retransmissions > 0
        # CRC-16 catches every single-bit flip: nothing corrupt delivered.
        assert stats["fault_undetected"] == 0

    def test_chaos_run_is_deterministic(self, chaos_seed):
        seed = chaos_seed(42)
        first = _chaos_read_write_run(seed=seed)
        second = _chaos_read_write_run(seed=seed)
        assert first == second

    def test_delay_jitter_reorders_but_never_loses(self, chaos_seed):
        policy = FaultPolicy(delay_jitter_ns=400.0)
        cluster, _g, sessions, injector = build(policy=policy,
                                                seed=chaos_seed(9))
        cluster.poke_segment(1, CTX, 0, _pattern(1, 1024))
        results = {}

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            for _ in range(8):
                yield from session.read_sync(1, 0, lbuf, 1024)
            results["data"] = session.buffer_peek(lbuf, 1024)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=5_000_000)
        assert results["data"] == _pattern(1, 1024)
        assert injector.delays_injected > 0
        assert injector.drops_injected == 0

    def test_atomics_execute_exactly_once_under_chaos(self, chaos_seed):
        policy = FaultPolicy(drop_prob=0.05, duplicate_prob=0.2)
        cluster, _g, sessions, injector = build(policy=policy,
                                                seed=chaos_seed(3),
                                                timeout_ns=3000.0)
        cluster.poke_segment(2, CTX, 0, bytes(8))
        adds_per_node = 20

        def adder(sim, n):
            session = sessions[n]
            lbuf = session.alloc_buffer(4096)
            last = -1
            for _ in range(adds_per_node):
                old = yield from session.fetch_add_sync(2, 0, lbuf, 1)
                # The shared counter only ever grows, so each adder's
                # observed old values never decrease. (They may repeat:
                # a late retransmitted request of the *previous* op can
                # answer from the replay cache under tid reuse — but a
                # re-EXECUTED atomic would overshoot the final sum,
                # which the assertion below pins down.)
                assert old >= last
                last = old

        for n in (0, 1):
            cluster.sim.process(adder(cluster.sim, n))
        cluster.run(until=50_000_000)
        final = int.from_bytes(cluster.peek_segment(2, CTX, 0, 8), "little")
        assert final == 2 * adds_per_node
        # Duplicated frames reached the NI twice; link sequencing dropped
        # every second copy.
        assert injector.duplicates_injected > 0
        snap = telemetry.snapshot(cluster)
        assert snap.total("ni_duplicates_dropped") \
            == injector.duplicates_injected


class TestErrorCompletions:
    def test_severed_link_surfaces_timeout_no_hang(self):
        cluster, _g, sessions, _inj = build(num_nodes=2, timeout_ns=2000.0,
                                            max_retries=2)
        cluster.fabric.sever_link(0, 1)
        outcome = {}

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            try:
                yield from session.read_sync(1, 0, lbuf, 256)
            except RemoteOpFailed as exc:
                outcome["error"] = exc.error
                outcome["at_ns"] = sim.now

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=10_000_000)
        assert outcome["error"] == "timeout"
        # Retry budget: 2000 * (1 + 2 + 4) = 14 us of backoff, plus
        # pipeline slack — far below the 10 ms run bound, i.e. no hang.
        assert outcome["at_ns"] < 50_000
        counters = cluster.nodes[0].rmc.counters.as_dict()
        assert counters["transactions_timed_out"] == 1
        assert counters["retransmissions"] == 2
        assert sessions[0].failed_peers == {1}

    def test_link_flap_recovers_via_retransmission(self):
        cluster, _g, sessions, injector = build(num_nodes=2,
                                                timeout_ns=3000.0)
        cluster.poke_segment(1, CTX, 0, _pattern(5, 64))
        injector.flap_link(0, 1, after_ns=0.0, down_ns=10_000.0)
        results = {}

        def app(sim):
            session = sessions[0]
            lbuf = session.alloc_buffer(4096)
            yield sim.timeout(10.0)  # land inside the outage window
            yield from session.read_sync(1, 0, lbuf, 64)
            results["data"] = session.buffer_peek(lbuf, 64)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=10_000_000)
        assert results["data"] == _pattern(5, 64)
        counters = cluster.nodes[0].rmc.counters.as_dict()
        assert counters["retransmissions"] >= 1
        assert counters.get("transactions_timed_out", 0) == 0


class TestMessagingUnderFaults:
    def _messengers(self, cluster, sessions, config=None):
        return {n: Messenger(sessions[n], n, len(sessions), config)
                for n in sessions}

    MSG_SEG = 64 * PAGE_SIZE  # room for the per-peer messaging regions

    def test_messages_arrive_intact_under_drops(self, chaos_seed):
        policy = FaultPolicy(drop_prob=0.02)
        cluster, _g, sessions, injector = build(num_nodes=2, policy=policy,
                                                seed=chaos_seed(11),
                                                timeout_ns=3000.0,
                                                seg=self.MSG_SEG)
        msgrs = self._messengers(cluster, sessions)
        payloads = [_pattern(i, 40 + 30 * i) for i in range(6)]
        stop = b"--that is all--"
        sent, received = list(payloads), []

        def sender(sim):
            for p in payloads:
                yield from msgrs[0].send(1, p)
            # A 2% drop rate may well spare a handful of messages on
            # some seeds; keep talking until the injector has provably
            # bitten at least once, then tell the receiver to stop.
            # (The cap only guards against a pathological seed; the
            # odds of a thousand clean frames at 2% are ~1e-9.)
            extra = 0
            while injector.drops_injected == 0 and extra < 400:
                p = _pattern(extra % 8, 48)
                sent.append(p)
                yield from msgrs[0].send(1, p)
                extra += 1
            yield from msgrs[0].send(1, stop)

        def receiver(sim):
            while True:
                data = yield from msgrs[1].recv(0)
                if data == stop:
                    return
                received.append(data)

        cluster.sim.process(sender(cluster.sim))
        cluster.sim.process(receiver(cluster.sim))
        cluster.run(until=50_000_000)
        assert received == sent
        assert injector.drops_injected > 0

    def test_recv_timeout_when_peer_silent(self):
        cluster, _g, sessions, _inj = build(num_nodes=2, seg=self.MSG_SEG)
        msgrs = self._messengers(cluster, sessions)
        outcome = {}

        def receiver(sim):
            try:
                yield from msgrs[1].recv(0, timeout_ns=40_000.0)
            except MessagingTimeout as exc:
                outcome["peer"] = exc.peer
                outcome["at_ns"] = sim.now

        cluster.sim.process(receiver(cluster.sim))
        cluster.run(until=1_000_000)
        assert outcome["peer"] == 0
        assert outcome["at_ns"] == pytest.approx(40_000.0, abs=500.0)

    def test_sender_sees_peer_failure_instead_of_deadlock(self):
        cluster, _g, sessions, _inj = build(num_nodes=2, timeout_ns=2000.0,
                                            max_retries=1, seg=self.MSG_SEG)
        msgrs = self._messengers(cluster, sessions,
                                 MessagingConfig(slots=2))
        cluster.fabric.sever_link(0, 1)
        outcome = {}

        def sender(sim):
            try:
                for i in range(10):
                    yield from msgrs[0].send(1, b"x" * 32)
            except PeerFailure as exc:
                outcome["peer"] = exc.peer

        cluster.sim.process(sender(cluster.sim))
        cluster.run(until=10_000_000)
        assert outcome["peer"] == 1


class TestZeroFaultOverhead:
    def _timed_reads(self, install_injector):
        cluster = Cluster(config=ClusterConfig(num_nodes=2))
        if install_injector:
            # Installed but inactive: the hot path must not change.
            cluster.fabric.install_fault_injector(FaultInjector(seed=123))
        gctx = cluster.create_global_context(CTX, SEG)
        session = RMCSession(cluster.nodes[0].core, gctx.qp(0),
                             gctx.entry(0))
        cluster.poke_segment(1, CTX, 0, _pattern(2, 4096))
        times = []

        def app(sim):
            lbuf = session.alloc_buffer(8192)
            for size in (64, 256, 1024, 4096):
                start = sim.now
                yield from session.read_sync(1, 0, lbuf, size)
                times.append(sim.now - start)

        cluster.sim.process(app(cluster.sim))
        cluster.run(until=10_000_000)
        return times, cluster.fabric.stats()

    def test_idle_injector_is_timing_invisible(self):
        with_inj, stats = self._timed_reads(True)
        without_inj, _ = self._timed_reads(False)
        assert with_inj == without_inj
        assert stats["fault_drops"] == 0
        assert stats["fault_corruptions"] == 0
