"""Serving harness goldens: parity, chaos SLO impact, batching ablation.

``run_serving`` must behave like every other harness in the repo: the
``outcome`` dict is a pure function of the scenario arguments —
identical for any worker count and any transport, with or without a
mid-trace primary crash. On top of parity this file pins the two
headline claims of the serving tier:

* doorbell batching/pipelining lifts served throughput >= 2x over the
  unbatched fast path at saturating offered load (and shortens the
  tail, since requests stop queueing behind per-op issue overhead);
* a crashed shard primary costs tail latency (the lease-expiry window
  shows up in that shard's p99) but not availability: every GET is
  served by the backup after failover, with zero wrong values.
"""

from __future__ import annotations

import pytest

from repro.serving import run_serving

BASE = dict(num_shards=3, replication=2, rate_mops=4.0,
            duration_ns=20_000.0, num_clients=1_000_000, num_keys=96,
            num_buckets=256, seed=11)

CHAOS = dict(BASE, duration_ns=40_000.0, crash_shard=1,
             crash_at_ns=12_000.0)

PARITY_CONFIGS = [(1, "inline"), (2, "inline"), (2, "shm"),
                  (4, "process")]


class TestParity:
    @pytest.mark.parametrize("workers,transport", PARITY_CONFIGS)
    def test_outcome_invariant_across_workers_and_transports(
            self, workers, transport):
        base = run_serving(workers=1, **BASE)["outcome"]
        other = run_serving(workers=workers, transport=transport,
                            **BASE)["outcome"]
        assert other == base

    @pytest.mark.parametrize("workers,transport", [(2, "shm"),
                                                   (4, "process")])
    def test_chaos_outcome_invariant(self, workers, transport):
        base = run_serving(workers=1, **CHAOS)["outcome"]
        other = run_serving(workers=workers, transport=transport,
                            **CHAOS)["outcome"]
        assert other == base


class TestServingSemantics:
    def test_every_request_served_and_verified(self):
        out = run_serving(**BASE)["outcome"]
        assert out["served"] == out["num_requests"] > 0
        assert out["failed"] == 0
        assert out["availability"] == 1.0
        assert out["wrong"] == 0
        assert out["logical_clients"] == 1_000_000
        assert out["latency"]["count"] == out["num_requests"]
        # Every GET costs at least one probe, and linear-probing chains
        # stay shallow at this load factor.
        for report in out["shards"].values():
            assert 1.0 <= report["probes_per_get"] < 3.0
        # Shard latency histograms merge exactly into the cluster one.
        assert sum(r["latency"]["count"]
                   for r in out["shards"].values()) \
            == out["latency"]["count"]

    def test_chaos_costs_tail_not_availability(self):
        quiet = run_serving(**BASE)["outcome"]
        chaos = run_serving(**CHAOS)["outcome"]
        assert chaos["membership"]["evictions"] == 1
        assert chaos["availability"] == 1.0   # backups absorb the crash
        assert chaos["failed"] == 0 and chaos["wrong"] == 0
        hit = chaos["shards"][CHAOS["crash_shard"]]
        assert hit["failovers"] > 0
        assert hit["replica_errors"] >= hit["failovers"]
        # The lease-expiry window lands in the crashed shard's tail.
        assert hit["latency"]["p99_ns"] \
            > 3 * quiet["shards"][CHAOS["crash_shard"]]["latency"]["p99_ns"]

    def test_crash_without_replication_rejected(self):
        with pytest.raises(ValueError):
            run_serving(num_shards=2, replication=1, crash_shard=0,
                        crash_at_ns=1000.0)
        with pytest.raises(ValueError):
            run_serving(num_shards=2, replication=2, crash_shard=0)
        with pytest.raises(ValueError):
            run_serving(num_shards=2, replication=3)


class TestBatchingAblation:
    def test_doorbell_batching_doubles_served_throughput(self):
        """The tentpole claim: at saturating offered load the batched
        fast path serves >= 2x the ops/sec of the per-op doorbell path
        (one issue overhead + one RGP WQ poll per *batch*), and its
        p99 is no worse."""
        kw = dict(num_shards=2, replication=1, rate_mops=48.0,
                  duration_ns=30_000.0, num_clients=1_000_000,
                  num_keys=128, num_buckets=512, seed=5, window=64)
        unbatched = run_serving(batch=1, **kw)["outcome"]
        batched = run_serving(batch=16, **kw)["outcome"]
        assert unbatched["posted"] == unbatched["doorbells"]
        assert batched["posted"] > 2 * batched["doorbells"]
        assert batched["served_mops"] >= 2.0 * unbatched["served_mops"]
        assert batched["latency"]["p99_ns"] \
            <= unbatched["latency"]["p99_ns"]
        # Both ablation arms answer every request correctly.
        for out in (unbatched, batched):
            assert out["failed"] == 0 and out["wrong"] == 0
            assert out["served"] == out["num_requests"]
