"""Cluster-level integration tests: topologies, multi-node traffic,
multi-QP, data integrity under concurrency."""

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.fabric import FabricConfig, torus2d
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 32 * PAGE_SIZE


class TestClusterConstruction:
    def test_nodes_created_with_ids(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=4))
        assert len(cluster) == 4
        assert [n.node_id for n in cluster.nodes] == [0, 1, 2, 3]

    def test_global_context_opens_everywhere(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=3))
        gctx = cluster.create_global_context(CTX, SEG, qps_per_node=2)
        for n in range(3):
            assert gctx.entry(n).ctx_id == CTX
            assert len(gctx.qps[n]) == 2
            assert gctx.qp(n, 1).qp_id != gctx.qp(n, 0).qp_id

    def test_topology_smaller_than_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=20, topology=torus2d(3, 3))

    def test_poke_peek_roundtrip_across_pages(self):
        cluster = Cluster(config=ClusterConfig(num_nodes=1))
        cluster.create_global_context(CTX, SEG)
        data = bytes(range(256)) * 40  # 10 KB, crosses a page boundary
        offset = PAGE_SIZE - 512
        cluster.poke_segment(0, CTX, offset, data)
        assert cluster.peek_segment(0, CTX, offset, len(data)) == data


class TestTorusCluster:
    def test_remote_read_over_torus(self):
        topo = torus2d(3, 3)
        cluster = Cluster(config=ClusterConfig(
            num_nodes=9, topology=topo,
            fabric=FabricConfig(link_latency_ns=15.0)))
        gctx = cluster.create_global_context(CTX, SEG)
        cluster.poke_segment(8, CTX, 0, b"far corner data" + bytes(49))
        session = RMCSession(cluster.nodes[0].core, gctx.qp(0),
                             gctx.entry(0))
        lbuf = session.alloc_buffer(4096)

        def app(sim):
            start = sim.now
            yield from session.read_sync(8, 0, lbuf, 64)
            return sim.now - start, session.buffer_peek(lbuf, 15)

        proc = cluster.sim.process(app(cluster.sim))
        cluster.run()
        elapsed, data = proc.value
        assert data == b"far corner data"
        # Multi-hop: noticeably more than one link latency each way.
        assert elapsed > 2 * 2 * 15.0

    def test_all_pairs_reads_on_torus(self):
        topo = torus2d(3, 3)
        cluster = Cluster(config=ClusterConfig(num_nodes=9, topology=topo))
        gctx = cluster.create_global_context(CTX, SEG)
        for n in range(9):
            cluster.poke_segment(n, CTX, 0, bytes([n]) * 64)
        results = {}

        def reader(sim, src):
            session = RMCSession(cluster.nodes[src].core, gctx.qp(src),
                                 gctx.entry(src))
            lbuf = session.alloc_buffer(4096)
            for dst in range(9):
                if dst == src:
                    continue
                yield from session.read_sync(dst, 0, lbuf, 64)
                results[(src, dst)] = session.buffer_peek(lbuf, 1)

        for src in range(9):
            cluster.sim.process(reader(cluster.sim, src))
        cluster.run()
        assert len(results) == 72
        assert all(v == bytes([dst]) for (_s, dst), v in results.items())


class TestManyToOne:
    def test_incast_requests_all_served(self):
        """7 nodes hammer node 0 simultaneously; flow control and the
        stateless RRPP must serve everything without loss."""
        cluster = Cluster(config=ClusterConfig(num_nodes=8))
        gctx = cluster.create_global_context(CTX, SEG)
        for i in range(64):
            cluster.poke_segment(0, CTX, i * 64, bytes([i]) * 64)
        done = []

        def reader(sim, src):
            session = RMCSession(cluster.nodes[src].core, gctx.qp(src),
                                 gctx.entry(src))
            lbuf = session.alloc_buffer(8192)
            for i in range(20):
                offset = ((src * 7 + i) % 64) * 64
                yield from session.read_sync(0, offset, lbuf, 64)
                expected = bytes([offset // 64])
                assert session.buffer_peek(lbuf, 1) == expected
            done.append(src)

        for src in range(1, 8):
            cluster.sim.process(reader(cluster.sim, src))
        cluster.run()
        assert sorted(done) == list(range(1, 8))
        assert cluster.nodes[0].rmc.counters["requests_served"] == 140


class TestDataIntegrityUnderConcurrency:
    def test_randomized_reads_and_writes_verify(self):
        """Randomized concurrent one-sided traffic; every read checks
        against a mirror of expected memory state (writers have
        disjoint regions so expected state is deterministic)."""
        rng = random.Random(1234)
        cluster = Cluster(config=ClusterConfig(num_nodes=4))
        gctx = cluster.create_global_context(CTX, SEG)
        region = 4096  # disjoint 4 KB region per writer on node 3
        mirrors = {}

        def worker(sim, src):
            session = RMCSession(cluster.nodes[src].core, gctx.qp(src),
                                 gctx.entry(src))
            lbuf = session.alloc_buffer(16384)
            base = src * region
            mirror = bytearray(region)
            mirrors[src] = mirror
            local_rng = random.Random(src)
            for _ in range(25):
                offset = local_rng.randrange(0, region - 256)
                length = local_rng.choice((8, 64, 100, 256))
                if local_rng.random() < 0.5:
                    payload = bytes(local_rng.randrange(256)
                                    for _ in range(length))
                    session.buffer_poke(lbuf, payload)
                    yield from session.write_sync(3, base + offset, lbuf,
                                                  length)
                    mirror[offset:offset + length] = payload
                else:
                    yield from session.read_sync(3, base + offset,
                                                 lbuf + 8192, length)
                    got = session.buffer_peek(lbuf + 8192, length)
                    assert got == bytes(mirror[offset:offset + length])

        procs = [cluster.sim.process(worker(cluster.sim, src))
                 for src in range(3)]
        cluster.run()
        assert all(p.ok for p in procs)
        # Final memory state matches every mirror.
        for src, mirror in mirrors.items():
            actual = cluster.peek_segment(3, CTX, src * region, region)
            assert actual == bytes(mirror)
